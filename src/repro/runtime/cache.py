"""Set-associative data-cache simulator.

The VM feeds every heap access (field/element read and write, allocation
touch) through one of these.  The default geometry approximates the L1
data cache of the paper's SparcStation-class machine: 16 KiB, 32-byte
lines, 4-way, LRU.

Only hit/miss counting is modelled (no write buffers, no prefetch); that
is enough to expose the locality effects object inlining produces —
fewer distinct lines touched per logical access and unit-stride parallel
arrays.

**Attribution mode** (off by default): :meth:`CacheSimulator.enable_attribution`
attaches a :class:`LocalityStats` recorder, and callers may then tag each
``access``/``touch_range`` with a label ``(kind, class_name, field_name,
alloc_site)``.  The recorder keeps per-label hit/miss counters plus a
bucketed per-address miss heatmap, so a trace can say *which field at
which allocation site* produced the misses — the cachegrind/mprof-style
view of the locality wins object inlining claims.  Attribution never
changes hit/miss behaviour: it only observes, so cycle counts are
bit-identical with it on or off.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of a simulated cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("size must be a multiple of line_bytes * associativity")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(slots=True)
class CacheStats:
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


#: Label family: ``(kind, class_name, field_name, alloc_site)``.
#: ``kind`` is one of ``"field"`` (object field), ``"inline_field"``
#: (inline-array element field through a view), ``"element"`` (plain array
#: element), or ``"alloc"`` (allocation touch).
AccessLabel = tuple

#: Fallback label for attribution-mode accesses that carry no label.
UNLABELED: AccessLabel = ("other", None, None, None)

#: Bound on trace-event payloads: label/heatmap summaries report at most
#: this many entries plus an explicit ``truncated`` count.
DEFAULT_TOP_K = 32


@dataclass(slots=True)
class LabelStats:
    """Hit/miss counters of one access label."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class LocalityStats:
    """Per-label and per-address-bucket cache attribution.

    One address bucket spans ``bucket_lines`` cache lines; the heatmap
    maps bucket index -> misses (and accesses), which is coarse enough to
    stay bounded on large heaps yet fine enough to show which structures
    the misses cluster on.
    """

    def __init__(self, config: CacheConfig, bucket_lines: int = 64) -> None:
        if bucket_lines <= 0:
            raise ValueError("bucket_lines must be positive")
        self.bucket_bytes = bucket_lines * config.line_bytes
        self.by_label: dict[AccessLabel, LabelStats] = {}
        self.bucket_misses: dict[int, int] = {}
        self.bucket_accesses: dict[int, int] = {}

    def record(
        self, label: AccessLabel, address: int, hit: bool, is_write: bool
    ) -> None:
        stats = self.by_label.get(label)
        if stats is None:
            stats = self.by_label[label] = LabelStats()
        if is_write:
            stats.writes += 1
            if not hit:
                stats.write_misses += 1
        else:
            stats.reads += 1
            if not hit:
                stats.read_misses += 1
        bucket = address // self.bucket_bytes
        self.bucket_accesses[bucket] = self.bucket_accesses.get(bucket, 0) + 1
        if not hit:
            self.bucket_misses[bucket] = self.bucket_misses.get(bucket, 0) + 1

    def reset(self) -> None:
        self.by_label.clear()
        self.bucket_misses.clear()
        self.bucket_accesses.clear()

    @property
    def attributed_misses(self) -> int:
        return sum(stats.misses for stats in self.by_label.values())

    # ------------------------------------------------------------------
    # Bounded summaries (trace-event payloads and harness results).

    def label_summary(self, top_k: int = DEFAULT_TOP_K) -> dict:
        """Top-``top_k`` labels by misses, with an explicit truncation count."""
        ranked = sorted(
            self.by_label.items(),
            key=lambda kv: (
                -kv[1].misses,
                -kv[1].accesses,
                tuple(str(part) for part in kv[0]),
            ),
        )
        labels = [
            {
                "kind": kind,
                "class": class_name,
                "field": field_name,
                "site": site,
                "reads": stats.reads,
                "writes": stats.writes,
                "misses": stats.misses,
                "accesses": stats.accesses,
                "miss_rate": round(stats.miss_rate, 6),
            }
            for (kind, class_name, field_name, site), stats in ranked[:top_k]
        ]
        return {
            "labels": labels,
            "total_labels": len(self.by_label),
            "truncated": max(0, len(self.by_label) - top_k),
        }

    def heatmap_summary(self, top_k: int = DEFAULT_TOP_K) -> dict:
        """Top-``top_k`` miss buckets (in address order), plus totals."""
        ranked = sorted(self.bucket_misses.items(), key=lambda kv: (-kv[1], kv[0]))
        buckets = [
            {
                "index": index,
                "base": index * self.bucket_bytes,
                "misses": misses,
                "accesses": self.bucket_accesses.get(index, 0),
            }
            for index, misses in sorted(ranked[:top_k])
        ]
        return {
            "bucket_bytes": self.bucket_bytes,
            "buckets": buckets,
            "total_buckets": len(self.bucket_accesses),
            "truncated": max(0, len(self.bucket_misses) - top_k),
            "total_misses": sum(self.bucket_misses.values()),
            "total_accesses": sum(self.bucket_accesses.values()),
        }


class CacheSimulator:
    """LRU set-associative cache with allocate-on-write-miss policy."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        # Each set is an ordered list of tags; index 0 is most recent.
        self._sets: list[list[int]] = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()
        #: Attribution recorder; ``None`` (the default) keeps the hot path
        #: at a single attribute load + None check, same spirit as
        #: ``NULL_TRACER``.
        self.locality: LocalityStats | None = None

    def enable_attribution(self, bucket_lines: int = 64) -> LocalityStats:
        """Attach (or return the existing) :class:`LocalityStats` recorder."""
        if self.locality is None:
            self.locality = LocalityStats(self.config, bucket_lines)
        return self.locality

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return self._sets[set_index], tag

    def access(
        self, address: int, is_write: bool = False, label: AccessLabel | None = None
    ) -> bool:
        """Touch ``address``; returns True on hit.

        ``label`` is only consulted when attribution is enabled; it never
        influences hit/miss behaviour or the aggregate counters.
        """
        ways, tag = self._locate(address)
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        hit = tag in ways
        if hit:
            ways.remove(tag)
            ways.insert(0, tag)
        else:
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
            ways.insert(0, tag)
            if len(ways) > self.config.associativity:
                ways.pop()
        locality = self.locality
        if locality is not None:
            locality.record(label if label is not None else UNLABELED, address, hit, is_write)
        return hit

    def touch_range(
        self,
        address: int,
        size: int,
        is_write: bool = False,
        label: AccessLabel | None = None,
    ) -> int:
        """Touch every line in [address, address+size); returns miss count."""
        if size <= 0:
            return 0
        line = self.config.line_bytes
        start = address // line * line
        misses = 0
        for line_addr in range(start, address + size, line):
            if not self.access(line_addr, is_write, label):
                misses += 1
        return misses

    def flush(self) -> None:
        """Empty the cache *contents* — a cold-cache boundary.

        Statistics (aggregate and attribution) are deliberately kept:
        a phase transition that wants a cold cache but cumulative counters
        across phases (warmup -> measurement) calls ``flush()`` alone.
        The benchmark harness needs neither — every build runs on a fresh
        interpreter and therefore a fresh, cold cache.  To zero the
        counters use :meth:`reset_stats`.
        """
        self._sets = [[] for _ in range(self.config.num_sets)]

    def reset_stats(self) -> None:
        """Zero the counters (aggregate and attribution) in place.

        Mutates the existing :class:`CacheStats` rather than replacing it,
        so aliases held elsewhere (``ExecutionStats.cache`` points at this
        object) keep reading the live counters.  Cache *contents* are
        untouched; combine with :meth:`flush` for a fully fresh phase.
        """
        stats = self.stats
        stats.reads = 0
        stats.writes = 0
        stats.read_misses = 0
        stats.write_misses = 0
        if self.locality is not None:
            self.locality.reset()
