"""Architectural cost model.

This is the substitute for the paper's SparcStation 20/60 hardware runs:
the VM counts the events object inlining actually changes — heap
dereferences, allocations, dynamic dispatches, and cache behaviour — and
charges each a plausible cycle cost.  Absolute cycle totals are not meant
to match 1997 hardware; only the *ratios* between builds matter (Figure
17 is normalized to the no-inlining build).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheStats, LocalityStats


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-event cycle charges."""

    base_instr: int = 1  # every executed IR instruction
    mem_access: int = 2  # each heap read/write (address generation + load)
    alloc_base: int = 100  # allocator invocation (malloc/GC fast path)
    stack_alloc: int = 2  # frame-extension cost for non-escaping allocations
    alloc_per_slot: int = 1  # zeroing / header initialization per slot
    dynamic_dispatch: int = 10  # method lookup for a dynamic send
    static_call: int = 2  # call/return linkage for a bound call
    builtin_call: int = 2
    miss_penalty: int = 24  # cache miss service time


@dataclass(slots=True)
class ExecutionStats:
    """Counters accumulated while the VM runs a program."""

    instructions: int = 0
    heap_reads: int = 0
    heap_writes: int = 0
    allocations: int = 0
    stack_allocations: int = 0
    #: Escape-proven allocations served from the frame region (reclaimed
    #: when the activation pops); charged like stack allocations.
    frame_allocations: int = 0
    allocated_slots: int = 0
    allocated_bytes: int = 0
    dynamic_dispatches: int = 0
    static_calls: int = 0
    builtin_calls: int = 0
    max_call_depth: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: Per-label / per-bucket cache attribution; populated only when the
    #: interpreter runs with ``attribute_locality=True`` (never consulted
    #: by the cost model — attribution is observation-only).
    locality: LocalityStats | None = None

    def cycles(self, model: CostModel | None = None) -> int:
        """Estimated cycles under ``model`` (default :class:`CostModel`)."""
        m = model or CostModel()
        return (
            self.instructions * m.base_instr
            + (self.heap_reads + self.heap_writes) * m.mem_access
            + self.allocations * m.alloc_base
            + (self.stack_allocations + self.frame_allocations) * m.stack_alloc
            + self.allocated_slots * m.alloc_per_slot
            + self.dynamic_dispatches * m.dynamic_dispatch
            + self.static_calls * m.static_call
            + self.builtin_calls * m.builtin_call
            + self.cache.misses * m.miss_penalty
        )

    def summary(self) -> dict[str, float]:
        """A flat dict of the interesting numbers (for reports/tests).

        When locality attribution was enabled the dict additionally
        carries the attribution scalars; the bounded per-label and
        per-bucket breakdowns travel as their own ``run.locality`` /
        ``run.heatmap`` trace events (see ``LocalityStats.label_summary``).
        """
        result = {
            "instructions": self.instructions,
            "heap_reads": self.heap_reads,
            "heap_writes": self.heap_writes,
            "allocations": self.allocations,
            "stack_allocations": self.stack_allocations,
            "frame_allocations": self.frame_allocations,
            "allocated_bytes": self.allocated_bytes,
            "dynamic_dispatches": self.dynamic_dispatches,
            "static_calls": self.static_calls,
            "cache_accesses": self.cache.accesses,
            "cache_misses": self.cache.misses,
            "cache_miss_rate": round(self.cache.miss_rate, 6),
            "cycles": self.cycles(),
        }
        if self.locality is not None:
            result["locality_labels"] = len(self.locality.by_label)
            result["locality_attributed_misses"] = self.locality.attributed_misses
        return result
