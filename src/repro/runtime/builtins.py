"""Builtin functions available to mini-ICC++ programs.

``array`` and ``len`` are lowered to dedicated instructions; everything
else routes through :func:`call_builtin`.  ``print`` appends to the VM's
output list rather than writing to stdout, so tests can compare observable
output across builds.
"""

from __future__ import annotations

import math

from .values import Value, format_value, is_truthy


class BuiltinError(Exception):
    """Raised when a builtin is applied to unsuitable arguments."""


def _require_number(name: str, value: Value) -> int | float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BuiltinError(f"{name}() expects a number, got {format_value(value)}")
    return value


def call_builtin(name: str, args: list[Value], output: list[str]) -> Value:
    """Execute builtin ``name``; print output goes to ``output``."""
    if name == "print":
        output.append(" ".join(format_value(arg) for arg in args))
        return None
    if name == "sqrt":
        operand = _require_number(name, args[0])
        if operand < 0:
            raise BuiltinError(f"sqrt() of negative number {operand}")
        return math.sqrt(operand)
    if name == "abs":
        return abs(_require_number(name, args[0]))
    if name == "floor":
        return math.floor(_require_number(name, args[0]))
    if name == "ceil":
        return math.ceil(_require_number(name, args[0]))
    if name == "min":
        return min(_require_number(name, args[0]), _require_number(name, args[1]))
    if name == "max":
        return max(_require_number(name, args[0]), _require_number(name, args[1]))
    if name == "pow":
        return _require_number(name, args[0]) ** _require_number(name, args[1])
    if name == "int":
        return int(_require_number(name, args[0]))
    if name == "float":
        return float(_require_number(name, args[0]))
    if name == "assert_true":
        if not is_truthy(args[0]):
            raise BuiltinError("assert_true failed")
        return None
    raise BuiltinError(f"unknown builtin {name!r}")
