"""Token definitions for the mini-ICC++ lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Every distinct token the lexer can produce."""

    # Literals / identifiers.
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    NAME = "name"

    # Keywords.
    CLASS = "class"
    VAR = "var"
    DEF = "def"
    INLINE = "inline"
    NEW = "new"
    THIS = "this"
    SUPER = "super"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    TRUE = "true"
    FALSE = "false"
    NIL = "nil"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    DOT = "."
    COLON = ":"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "<eof>"


#: Reserved words mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "class": TokenKind.CLASS,
    "var": TokenKind.VAR,
    "def": TokenKind.DEF,
    "inline": TokenKind.INLINE,
    "new": TokenKind.NEW,
    "this": TokenKind.THIS,
    "super": TokenKind.SUPER,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "for": TokenKind.FOR,
    "return": TokenKind.RETURN,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "nil": TokenKind.NIL,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexed token.

    ``value`` carries the decoded payload for literal tokens (``int`` for
    INT, ``float`` for FLOAT, the unescaped text for STRING) and the
    identifier text for NAME tokens; it is ``None`` for punctuation.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
