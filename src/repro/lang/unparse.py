"""AST -> source renderer for mini-ICC++.

The delta-debugging reducer (:mod:`repro.fuzz.reduce`) shrinks a failing
*AST* and needs each candidate back as source text to feed the normal
compile pipeline; the fuzz corpus archives reduced programs as ``.icc``
files for replay.  The renderer therefore guarantees a **round-trip**
property rather than pretty output: ``parse(unparse(parse(s)))`` is the
same tree as ``parse(s)``.  To that end every binary and unary operation
is parenthesized explicitly, so operator precedence never has to be
reconstructed.
"""

from __future__ import annotations

import json

from . import ast

_INDENT = "    "


def unparse_program(program: ast.Program) -> str:
    """Render a whole compilation unit as parseable source text."""
    parts: list[str] = []
    for decl in program.globals:
        init = f" = {unparse_expr(decl.init)}" if decl.init is not None else ""
        parts.append(f"var {decl.name}{init};")
    if program.globals:
        parts.append("")
    for cls in program.classes:
        parts.append(_render_class(cls))
        parts.append("")
    for func in program.functions:
        parts.append(_render_callable("def", func.name, func.params, func.body, 0))
        parts.append("")
    while parts and parts[-1] == "":
        parts.pop()
    return "\n".join(parts) + "\n"


def _render_class(cls: ast.ClassDecl) -> str:
    header = f"class {cls.name}"
    if cls.superclass is not None:
        header += f" : {cls.superclass}"
    lines = [header + " {"]
    for fdecl in cls.fields:
        inline = "inline " if fdecl.declared_inline else ""
        lines.append(f"{_INDENT}var {inline}{fdecl.name};")
    for method in cls.methods:
        lines.append(
            _render_callable("def", method.name, method.params, method.body, 1)
        )
    lines.append("}")
    return "\n".join(lines)


def _render_callable(
    keyword: str, name: str, params: tuple[str, ...], body: tuple[ast.Stmt, ...], depth: int
) -> str:
    pad = _INDENT * depth
    lines = [f"{pad}{keyword} {name}({', '.join(params)}) {{"]
    for stmt in body:
        lines.extend(_render_stmt(stmt, depth + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Statements.


def _render_stmt(stmt: ast.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    kind = type(stmt)
    if kind is ast.ExprStmt:
        return [f"{pad}{unparse_expr(stmt.expr)};"]
    if kind is ast.VarDecl:
        init = f" = {unparse_expr(stmt.init)}" if stmt.init is not None else ""
        return [f"{pad}var {stmt.name}{init};"]
    if kind is ast.Assign:
        return [f"{pad}{unparse_expr(stmt.target)} = {unparse_expr(stmt.value)};"]
    if kind is ast.If:
        lines = [f"{pad}if ({unparse_expr(stmt.condition)}) {{"]
        for inner in stmt.then_body:
            lines.extend(_render_stmt(inner, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(_render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if kind is ast.While:
        lines = [f"{pad}while ({unparse_expr(stmt.condition)}) {{"]
        for inner in stmt.body:
            lines.extend(_render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if kind is ast.For:
        init = _render_for_clause(stmt.init)
        cond = unparse_expr(stmt.condition) if stmt.condition is not None else ""
        step = _render_for_clause(stmt.step)
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        for inner in stmt.body:
            lines.extend(_render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if kind is ast.Return:
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {unparse_expr(stmt.value)};"]
    if kind is ast.Break:
        return [f"{pad}break;"]
    if kind is ast.Continue:
        return [f"{pad}continue;"]
    if kind is ast.Block:
        lines = [f"{pad}{{"]
        for inner in stmt.body:
            lines.extend(_render_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"cannot unparse statement {kind.__name__}")


def _render_for_clause(clause: ast.Stmt | None) -> str:
    """A ``for`` header part: a statement rendered without ``;`` or pad."""
    if clause is None:
        return ""
    rendered = _render_stmt(clause, 0)
    if len(rendered) != 1:
        raise TypeError(f"for-header clause must be one line, got {rendered}")
    return rendered[0].rstrip(";")


# ----------------------------------------------------------------------
# Expressions.


def unparse_expr(expr: ast.Expr) -> str:
    kind = type(expr)
    if kind is ast.IntLiteral:
        return str(expr.value)
    if kind is ast.FloatLiteral:
        return repr(expr.value)
    if kind is ast.StringLiteral:
        return json.dumps(expr.value)
    if kind is ast.BoolLiteral:
        return "true" if expr.value else "false"
    if kind is ast.NilLiteral:
        return "nil"
    if kind is ast.NameRef:
        return expr.name
    if kind is ast.ThisRef:
        return "this"
    if kind is ast.FieldAccess:
        return f"{_postfix_base(expr.obj)}.{expr.field_name}"
    if kind is ast.IndexAccess:
        return f"{_postfix_base(expr.array)}[{unparse_expr(expr.index)}]"
    if kind is ast.UnaryOp:
        return f"({expr.op}{unparse_expr(expr.operand)})"
    if kind is ast.BinaryOp:
        return f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
    if kind is ast.NewObject:
        return f"new {expr.class_name}({_args(expr.args)})"
    if kind is ast.MethodCall:
        return f"{_postfix_base(expr.receiver)}.{expr.method_name}({_args(expr.args)})"
    if kind is ast.SuperCall:
        return f"super.{expr.method_name}({_args(expr.args)})"
    if kind is ast.FunctionCall:
        return f"{expr.func_name}({_args(expr.args)})"
    raise TypeError(f"cannot unparse expression {kind.__name__}")


def _postfix_base(expr: ast.Expr) -> str:
    """Receiver of a ``.``/``[]`` postfix: parenthesize non-postfix forms."""
    rendered = unparse_expr(expr)
    if rendered.startswith("("):
        return rendered
    if isinstance(
        expr,
        (
            ast.NameRef,
            ast.ThisRef,
            ast.FieldAccess,
            ast.IndexAccess,
            ast.MethodCall,
            ast.FunctionCall,
            ast.SuperCall,
        ),
    ):
        return rendered
    return f"({rendered})"


def _args(args: tuple[ast.Expr, ...]) -> str:
    return ", ".join(unparse_expr(arg) for arg in args)
