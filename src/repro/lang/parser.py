"""Recursive-descent parser for mini-ICC++.

Grammar (EBNF, ``//`` and ``/* */`` comments are trivia):

    program     := (class_decl | func_decl | global_decl)* EOF
    class_decl  := 'class' NAME (':' NAME)? '{' member* '}'
    member      := 'var' 'inline'? NAME ';' | method_decl
    method_decl := 'def' NAME '(' params? ')' block
    func_decl   := 'def' NAME '(' params? ')' block
    global_decl := 'var' NAME ('=' expr)? ';'
    block       := '{' stmt* '}'
    stmt        := var_stmt | if | while | for | return | break ';'
                 | continue ';' | block | expr_or_assign ';'
    expr_or_assign := expr ('=' expr)?
    expr        := or_expr
    or_expr     := and_expr ('||' and_expr)*
    and_expr    := eq_expr ('&&' eq_expr)*
    eq_expr     := rel_expr (('=='|'!=') rel_expr)*
    rel_expr    := add_expr (('<'|'<='|'>'|'>=') add_expr)*
    add_expr    := mul_expr (('+'|'-') mul_expr)*
    mul_expr    := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'!') unary | postfix
    postfix     := primary ( '.' NAME ('(' args? ')')?
                           | '[' expr ']' )*
    primary     := INT | FLOAT | STRING | 'true' | 'false' | 'nil'
                 | 'this' | 'new' NAME '(' args? ')'
                 | 'super' '.' NAME '(' args? ')'
                 | NAME ('(' args? ')')? | '(' expr ')'
"""

from __future__ import annotations

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind


class Parser:
    """Parses one token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers.

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _match(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        if self._at(kind):
            return self._advance()
        actual = self._peek()
        raise ParseError(
            f"expected {kind.value!r} {context}, found {actual.text!r}",
            actual.location,
        )

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # ------------------------------------------------------------------
    # Top level.

    def parse_program(self) -> ast.Program:
        classes: list[ast.ClassDecl] = []
        functions: list[ast.FunctionDecl] = []
        globals_: list[ast.GlobalDecl] = []
        loc = self._loc()
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.CLASS):
                classes.append(self._parse_class())
            elif self._at(TokenKind.DEF):
                functions.append(self._parse_function())
            elif self._at(TokenKind.VAR):
                globals_.append(self._parse_global())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'class', 'def', or 'var' at top level, found {token.text!r}",
                    token.location,
                )
        return ast.Program(loc, tuple(classes), tuple(functions), tuple(globals_))

    def _parse_class(self) -> ast.ClassDecl:
        loc = self._expect(TokenKind.CLASS, "to start class declaration").location
        name = self._expect(TokenKind.NAME, "after 'class'").text
        superclass: str | None = None
        if self._match(TokenKind.COLON):
            superclass = self._expect(TokenKind.NAME, "after ':'").text
        self._expect(TokenKind.LBRACE, "to open class body")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.VAR):
                fields.append(self._parse_field())
            elif self._at(TokenKind.DEF):
                methods.append(self._parse_method())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'var' or 'def' in class body, found {token.text!r}",
                    token.location,
                )
        self._expect(TokenKind.RBRACE, "to close class body")
        return ast.ClassDecl(loc, name, superclass, tuple(fields), tuple(methods))

    def _parse_field(self) -> ast.FieldDecl:
        loc = self._expect(TokenKind.VAR, "to start field declaration").location
        declared_inline = self._match(TokenKind.INLINE) is not None
        name = self._expect(TokenKind.NAME, "in field declaration").text
        self._expect(TokenKind.SEMICOLON, "after field declaration")
        return ast.FieldDecl(loc, name, declared_inline)

    def _parse_method(self) -> ast.MethodDecl:
        loc = self._expect(TokenKind.DEF, "to start method").location
        name = self._expect(TokenKind.NAME, "after 'def'").text
        params = self._parse_params()
        body = self._parse_block_body()
        return ast.MethodDecl(loc, name, params, body)

    def _parse_function(self) -> ast.FunctionDecl:
        loc = self._expect(TokenKind.DEF, "to start function").location
        name = self._expect(TokenKind.NAME, "after 'def'").text
        params = self._parse_params()
        body = self._parse_block_body()
        return ast.FunctionDecl(loc, name, params, body)

    def _parse_global(self) -> ast.GlobalDecl:
        loc = self._expect(TokenKind.VAR, "to start global declaration").location
        name = self._expect(TokenKind.NAME, "in global declaration").text
        init: ast.Expr | None = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after global declaration")
        return ast.GlobalDecl(loc, name, init)

    def _parse_params(self) -> tuple[str, ...]:
        self._expect(TokenKind.LPAREN, "to open parameter list")
        params: list[str] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._expect(TokenKind.NAME, "parameter name").text)
            while self._match(TokenKind.COMMA):
                params.append(self._expect(TokenKind.NAME, "parameter name").text)
        self._expect(TokenKind.RPAREN, "to close parameter list")
        seen: set[str] = set()
        for param in params:
            if param in seen:
                raise ParseError(f"duplicate parameter {param!r}", self._loc())
            seen.add(param)
        return tuple(params)

    # ------------------------------------------------------------------
    # Statements.

    def _parse_block_body(self) -> tuple[ast.Stmt, ...]:
        self._expect(TokenKind.LBRACE, "to open block")
        stmts: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", self._loc())
            stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE, "to close block")
        return tuple(stmts)

    def _parse_stmt(self) -> ast.Stmt:
        kind = self._peek().kind
        if kind is TokenKind.VAR:
            return self._parse_var_stmt()
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.RETURN:
            return self._parse_return()
        if kind is TokenKind.BREAK:
            loc = self._advance().location
            self._expect(TokenKind.SEMICOLON, "after 'break'")
            return ast.Break(loc)
        if kind is TokenKind.CONTINUE:
            loc = self._advance().location
            self._expect(TokenKind.SEMICOLON, "after 'continue'")
            return ast.Continue(loc)
        if kind is TokenKind.LBRACE:
            loc = self._loc()
            return ast.Block(loc, self._parse_block_body())
        stmt = self._parse_expr_or_assign()
        self._expect(TokenKind.SEMICOLON, "after statement")
        return stmt

    def _parse_var_stmt(self) -> ast.VarDecl:
        loc = self._expect(TokenKind.VAR, "to start variable declaration").location
        name = self._expect(TokenKind.NAME, "in variable declaration").text
        init: ast.Expr | None = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after variable declaration")
        return ast.VarDecl(loc, name, init)

    def _parse_if(self) -> ast.If:
        loc = self._expect(TokenKind.IF, "").location
        self._expect(TokenKind.LPAREN, "after 'if'")
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after if condition")
        then_body = self._parse_stmt_as_body()
        else_body: tuple[ast.Stmt, ...] = ()
        if self._match(TokenKind.ELSE):
            else_body = self._parse_stmt_as_body()
        return ast.If(loc, condition, then_body, else_body)

    def _parse_stmt_as_body(self) -> tuple[ast.Stmt, ...]:
        """Parse either a braced block or a single statement as a body."""
        if self._at(TokenKind.LBRACE):
            return self._parse_block_body()
        return (self._parse_stmt(),)

    def _parse_while(self) -> ast.While:
        loc = self._expect(TokenKind.WHILE, "").location
        self._expect(TokenKind.LPAREN, "after 'while'")
        condition = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after while condition")
        body = self._parse_stmt_as_body()
        return ast.While(loc, condition, body)

    def _parse_for(self) -> ast.For:
        loc = self._expect(TokenKind.FOR, "").location
        self._expect(TokenKind.LPAREN, "after 'for'")
        init: ast.Stmt | None = None
        if not self._at(TokenKind.SEMICOLON):
            if self._at(TokenKind.VAR):
                init = self._parse_var_stmt()
            else:
                init = self._parse_expr_or_assign()
                self._expect(TokenKind.SEMICOLON, "after for-init")
        else:
            self._advance()
        condition: ast.Expr | None = None
        if not self._at(TokenKind.SEMICOLON):
            condition = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after for-condition")
        step: ast.Stmt | None = None
        if not self._at(TokenKind.RPAREN):
            step = self._parse_expr_or_assign()
        self._expect(TokenKind.RPAREN, "after for header")
        body = self._parse_stmt_as_body()
        return ast.For(loc, init, condition, step, body)

    def _parse_return(self) -> ast.Return:
        loc = self._expect(TokenKind.RETURN, "").location
        value: ast.Expr | None = None
        if not self._at(TokenKind.SEMICOLON):
            value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "after 'return'")
        return ast.Return(loc, value)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        loc = self._loc()
        expr = self._parse_expr()
        if self._match(TokenKind.ASSIGN):
            if not isinstance(expr, (ast.NameRef, ast.FieldAccess, ast.IndexAccess)):
                raise ParseError("invalid assignment target", loc)
            value = self._parse_expr()
            return ast.Assign(loc, expr, value)
        return ast.ExprStmt(loc, expr)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing via stratified productions).

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            loc = self._advance().location
            right = self._parse_and()
            left = ast.BinaryOp(loc, "||", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_eq()
        while self._at(TokenKind.AND):
            loc = self._advance().location
            right = self._parse_eq()
            left = ast.BinaryOp(loc, "&&", left, right)
        return left

    def _parse_eq(self) -> ast.Expr:
        left = self._parse_rel()
        while self._peek().kind in (TokenKind.EQ, TokenKind.NE):
            token = self._advance()
            right = self._parse_rel()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_rel(self) -> ast.Expr:
        left = self._parse_add()
        while self._peek().kind in (
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
        ):
            token = self._advance()
            right = self._parse_add()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self._advance()
            right = self._parse_mul()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT):
            token = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(token.location, token.text, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._peek().kind in (TokenKind.MINUS, TokenKind.NOT):
            token = self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.location, token.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokenKind.DOT):
                loc = self._advance().location
                name = self._expect(TokenKind.NAME, "after '.'").text
                if self._at(TokenKind.LPAREN):
                    args = self._parse_args()
                    expr = ast.MethodCall(loc, expr, name, args)
                else:
                    expr = ast.FieldAccess(loc, expr, name)
            elif self._at(TokenKind.LBRACKET):
                loc = self._advance().location
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET, "after array index")
                expr = ast.IndexAccess(loc, expr, index)
            else:
                return expr

    def _parse_args(self) -> tuple[ast.Expr, ...]:
        self._expect(TokenKind.LPAREN, "to open argument list")
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN, "to close argument list")
        return tuple(args)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(token.location, token.value)
        if kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLiteral(token.location, token.value)
        if kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(token.location, token.value)
        if kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLiteral(token.location, True)
        if kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLiteral(token.location, False)
        if kind is TokenKind.NIL:
            self._advance()
            return ast.NilLiteral(token.location)
        if kind is TokenKind.THIS:
            self._advance()
            return ast.ThisRef(token.location)
        if kind is TokenKind.NEW:
            self._advance()
            name = self._expect(TokenKind.NAME, "after 'new'").text
            args = self._parse_args()
            return ast.NewObject(token.location, name, args)
        if kind is TokenKind.SUPER:
            self._advance()
            self._expect(TokenKind.DOT, "after 'super'")
            name = self._expect(TokenKind.NAME, "after 'super.'").text
            args = self._parse_args()
            return ast.SuperCall(token.location, name, args)
        if kind is TokenKind.NAME:
            self._advance()
            if self._at(TokenKind.LPAREN):
                args = self._parse_args()
                return ast.FunctionCall(token.location, token.value, args)
            return ast.NameRef(token.location, token.value)
        if kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.location)


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    """Lex and parse ``source`` into a :class:`repro.lang.ast.Program`."""
    return Parser(tokenize(source, filename)).parse_program()
