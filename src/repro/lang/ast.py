"""Abstract syntax tree for mini-ICC++.

The AST is a plain dataclass hierarchy.  Nodes carry their source location
so later phases can produce located diagnostics.  The tree is immutable by
convention (phases build new structures rather than mutating it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SourceLocation


@dataclass(frozen=True, slots=True)
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation


# ----------------------------------------------------------------------
# Expressions.


@dataclass(frozen=True, slots=True)
class Expr(Node):
    """Base class for expressions."""


@dataclass(frozen=True, slots=True)
class IntLiteral(Expr):
    value: int


@dataclass(frozen=True, slots=True)
class FloatLiteral(Expr):
    value: float


@dataclass(frozen=True, slots=True)
class StringLiteral(Expr):
    value: str


@dataclass(frozen=True, slots=True)
class BoolLiteral(Expr):
    value: bool


@dataclass(frozen=True, slots=True)
class NilLiteral(Expr):
    pass


@dataclass(frozen=True, slots=True)
class NameRef(Expr):
    """A reference to a local variable, parameter, or global."""

    name: str


@dataclass(frozen=True, slots=True)
class ThisRef(Expr):
    """``this`` inside a method body."""


@dataclass(frozen=True, slots=True)
class FieldAccess(Expr):
    """``obj.field`` read."""

    obj: Expr
    field_name: str


@dataclass(frozen=True, slots=True)
class IndexAccess(Expr):
    """``arr[index]`` read."""

    array: Expr
    index: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    """``-x`` or ``!x``."""

    op: str
    operand: Expr


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """Arithmetic, comparison, or short-circuit logical operation.

    ``&&`` and ``||`` short-circuit; the lowering phase expands them into
    control flow.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class NewObject(Expr):
    """``new C(args...)`` — allocate and run the ``init`` constructor."""

    class_name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class MethodCall(Expr):
    """``obj.name(args...)`` — dynamically dispatched send."""

    receiver: Expr
    method_name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class SuperCall(Expr):
    """``super.name(args...)`` — statically bound call to a superclass method."""

    method_name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class FunctionCall(Expr):
    """``name(args...)`` — call of a top-level function or builtin."""

    func_name: str
    args: tuple[Expr, ...]


# ----------------------------------------------------------------------
# Statements.


@dataclass(frozen=True, slots=True)
class Stmt(Node):
    """Base class for statements."""


@dataclass(frozen=True, slots=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True, slots=True)
class VarDecl(Stmt):
    """``var name = init;`` — declares a local (or global at top level)."""

    name: str
    init: Expr | None


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """``target = value;`` where target is a name, field, or index."""

    target: Expr
    value: Expr


@dataclass(frozen=True, slots=True)
class If(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class While(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class For(Stmt):
    """C-style ``for (init; cond; step) body``; every header part optional."""

    init: Stmt | None
    condition: Expr | None
    step: Stmt | None
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    value: Expr | None


@dataclass(frozen=True, slots=True)
class Break(Stmt):
    pass


@dataclass(frozen=True, slots=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True, slots=True)
class Block(Stmt):
    """A nested ``{ ... }`` scope."""

    body: tuple[Stmt, ...]


# ----------------------------------------------------------------------
# Declarations.


@dataclass(frozen=True, slots=True)
class FieldDecl(Node):
    """``var [inline] name;`` inside a class.

    ``declared_inline`` mirrors a C++ programmer writing the member as a
    by-value object; the uniform model ignores it, but the manual-inlining
    baseline and Figure 14 consume it.
    """

    name: str
    declared_inline: bool = False


@dataclass(frozen=True, slots=True)
class MethodDecl(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class ClassDecl(Node):
    name: str
    superclass: str | None
    fields: tuple[FieldDecl, ...]
    methods: tuple[MethodDecl, ...]


@dataclass(frozen=True, slots=True)
class FunctionDecl(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True, slots=True)
class GlobalDecl(Node):
    name: str
    init: Expr | None


@dataclass(frozen=True, slots=True)
class Program(Node):
    """A whole compilation unit."""

    classes: tuple[ClassDecl, ...]
    functions: tuple[FunctionDecl, ...]
    globals: tuple[GlobalDecl, ...] = field(default=())

    def find_class(self, name: str) -> ClassDecl | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def find_function(self, name: str) -> FunctionDecl | None:
        for func in self.functions:
            if func.name == name:
                return func
        return None
