"""Diagnostics for the mini-ICC++ front end.

Every error raised while processing a source program carries a
:class:`SourceLocation` so tools (tests, the CLI, the benchmark harness) can
point at the offending text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a source file: 1-based line and column."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes that have no source position.
UNKNOWN_LOCATION = SourceLocation(0, 0, "<synthetic>")


class ReproError(Exception):
    """Base class for every error raised by the repro toolchain."""


class LexError(ReproError):
    """Raised when the lexer encounters malformed input."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.raw_message = message
        self.location = location


class ParseError(ReproError):
    """Raised when the parser encounters a syntactically invalid program."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"{location}: {message}")
        self.raw_message = message
        self.location = location


class SemanticError(ReproError):
    """Raised during lowering for statically detectable semantic errors.

    Examples: duplicate class names, `this` outside a method, assignment to
    an undeclared variable, unknown superclass.
    """

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION) -> None:
        if location is UNKNOWN_LOCATION:
            super().__init__(message)
        else:
            super().__init__(f"{location}: {message}")
        self.raw_message = message
        self.location = location
