"""Front end for mini-ICC++, the uniform-object-model language the
reproduction compiles.

Public surface:

- :func:`tokenize` — lex a source string
- :func:`parse_program` — lex + parse into an AST
- :mod:`repro.lang.ast` — the AST node classes
- the error types in :mod:`repro.lang.errors`
"""

from . import ast
from .errors import LexError, ParseError, ReproError, SemanticError, SourceLocation
from .lexer import tokenize
from .parser import parse_program

__all__ = [
    "ast",
    "tokenize",
    "parse_program",
    "LexError",
    "ParseError",
    "SemanticError",
    "ReproError",
    "SourceLocation",
]
