"""Hand-written lexer for mini-ICC++.

The lexer is a straightforward single-pass scanner producing a list of
:class:`~repro.lang.tokens.Token`.  Both ``//`` line comments and
``/* ... */`` block comments are supported; block comments do not nest
(matching C/C++).
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_SIMPLE_PUNCT: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "%": TokenKind.PERCENT,
}

_ESCAPES: dict[str, str] = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "0": "\0",
}


class Lexer:
    """Tokenizes one source string."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Scan the entire input, returning tokens terminated by EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Scanning helpers.

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while True:
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------
    # Token producers.

    def _next_token(self) -> Token:
        self._skip_trivia()
        loc = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()
        if ch.isdigit():
            return self._lex_number(loc)
        if ch.isalpha() or ch == "_":
            return self._lex_name(loc)
        if ch == '"':
            return self._lex_string(loc)
        return self._lex_punct(loc)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        if is_float:
            return Token(TokenKind.FLOAT, text, loc, float(text))
        return Token(TokenKind.INT, text, loc, int(text))

    def _lex_name(self, loc: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        kind = KEYWORDS.get(text, TokenKind.NAME)
        value = text if kind is TokenKind.NAME else None
        return Token(kind, text, loc, value)

    def _lex_string(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self._source):
                raise LexError("unterminated string literal", loc)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\n":
                raise LexError("newline in string literal", loc)
            if ch == "\\":
                if self._pos >= len(self._source):
                    raise LexError("unterminated escape sequence", loc)
                escape = self._advance()
                if escape not in _ESCAPES:
                    raise LexError(f"unknown escape sequence '\\{escape}'", loc)
                parts.append(_ESCAPES[escape])
            else:
                parts.append(ch)
        text = "".join(parts)
        return Token(TokenKind.STRING, text, loc, text)

    def _lex_punct(self, loc: SourceLocation) -> Token:
        ch = self._advance()
        nxt = self._peek()
        if ch == "=" and nxt == "=":
            self._advance()
            return Token(TokenKind.EQ, "==", loc)
        if ch == "!" and nxt == "=":
            self._advance()
            return Token(TokenKind.NE, "!=", loc)
        if ch == "<" and nxt == "=":
            self._advance()
            return Token(TokenKind.LE, "<=", loc)
        if ch == ">" and nxt == "=":
            self._advance()
            return Token(TokenKind.GE, ">=", loc)
        if ch == "&" and nxt == "&":
            self._advance()
            return Token(TokenKind.AND, "&&", loc)
        if ch == "|" and nxt == "|":
            self._advance()
            return Token(TokenKind.OR, "||", loc)
        if ch == "=":
            return Token(TokenKind.ASSIGN, "=", loc)
        if ch == "<":
            return Token(TokenKind.LT, "<", loc)
        if ch == ">":
            return Token(TokenKind.GT, ">", loc)
        if ch == "!":
            return Token(TokenKind.NOT, "!", loc)
        if ch == "/":
            return Token(TokenKind.SLASH, "/", loc)
        if ch in _SIMPLE_PUNCT:
            return Token(_SIMPLE_PUNCT[ch], ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
