"""The unified compile API.

:class:`Session` is the front door of the package: it owns the source
text, the analysis configuration, and the tracer, threads them through
every phase exactly once, and caches intermediate artifacts — the
compiled IR, analysis results (via a shared
:class:`~repro.analysis.AnalysisCache`), and one
:class:`~repro.inlining.pipeline.OptimizeReport` per distinct set of
optimization options::

    from repro import Session

    session = Session(SOURCE)
    program = session.compile()          # parse + lower once
    result = session.analyze()           # flow analysis of the raw IR
    report = session.optimize()          # object inlining ON (cached)
    run = session.run("inline")          # execute the inlined build

    session.optimize(inline=False)       # devirtualize-only build
    session.run()                        # run the unoptimized program

Repeated calls are free: ``compile`` parses once, ``optimize`` memoizes
per option set, and ``analyze``/``optimize`` share analysis results for
identical (program, config) pairs, so ``session.analyze()`` followed by
``session.optimize()`` runs the (expensive) fixpoint once.

The classic top-level functions — :func:`compile_source`,
:func:`analyze`, :func:`optimize`, :func:`run_program` — remain as thin
wrappers over a one-shot session.
"""

from __future__ import annotations

from .analysis import AnalysisCache, AnalysisConfig, AnalysisResult
from .analysis import analyze as _analyze
from .inlining.pipeline import OptimizeReport
from .inlining.pipeline import optimize as _optimize
from .ir import compile_source as _compile_source
from .ir.model import IRProgram
from .obs import NULL_TRACER
from .runtime import CacheConfig, RunResult
from .runtime import run_program as _run_program

#: ``Session.run``/``program_for`` build names -> ``optimize`` options.
#: ``"plain"`` is the unoptimized compiled program.
BUILD_OPTIONS: dict[str, dict[str, bool] | None] = {
    "plain": None,
    "noinline": {"inline": False},
    "inline": {"inline": True},
    "manual": {"manual_only": True},
}


class Session:
    """One source program moving through the compile pipeline.

    Exactly one of ``source`` (mini-ICC++ text) or ``program`` (an
    already-lowered :class:`IRProgram`) must be given.  ``config`` and
    ``tracer`` are threaded through every subsequent phase.
    """

    def __init__(
        self,
        source: str | None = None,
        *,
        program: IRProgram | None = None,
        path: str = "<session>",
        config: AnalysisConfig | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        if (source is None) == (program is None):
            raise ValueError("Session needs exactly one of `source` or `program`")
        self._source = source
        self._path = path
        self._program = program
        self.config = config
        self.tracer = tracer
        #: Shared analysis memo: ``analyze()``, every ``optimize()`` build,
        #: and the pipeline's nested rounds all draw from this cache.
        self.analysis_cache = AnalysisCache()
        self._analysis: AnalysisResult | None = None
        self._reports: dict[tuple, OptimizeReport] = {}

    # ------------------------------------------------------------------
    # Pipeline phases.

    def compile(self) -> IRProgram:
        """Parse + lower the source to IR (cached)."""
        if self._program is None:
            self._program = _compile_source(self._source, self._path)
        return self._program

    def analyze(self, tracer=None) -> AnalysisResult:
        """Flow-analyze the compiled program (cached).

        ``tracer`` overrides the session tracer for this call — used by
        concurrent drivers (the bench harness) that give every work unit
        its own tracer and merge them at join.  A memoized result is
        returned as-is: no phase re-runs, so nothing new is traced.
        """
        if self._analysis is None:
            program = self.compile()
            config = self.config or AnalysisConfig()
            result = self.analysis_cache.get(program, config)
            if result is None:
                result = _analyze(
                    program, config, self.tracer if tracer is None else tracer
                )
                self.analysis_cache.put(program, config, result)
            self._analysis = result
        return self._analysis

    def optimize(self, *, tracer=None, **options) -> OptimizeReport:
        """Run the inlining pipeline; one cached report per option set.

        ``options`` are :func:`repro.inlining.pipeline.optimize` keywords
        (``inline=``, ``manual_only=``, ``max_rounds=``, ...); config
        comes from the session, as does the tracer unless overridden
        per-call (see :meth:`analyze` — memoized reports are returned
        without re-tracing).
        """
        key = tuple(sorted(options.items()))
        report = self._reports.get(key)
        if report is None:
            report = _optimize(
                self.compile(),
                config=self.config,
                tracer=self.tracer if tracer is None else tracer,
                analysis_cache=self.analysis_cache,
                **options,
            )
            self._reports[key] = report
        return report

    def program_for(self, build: str = "plain") -> IRProgram:
        """The program of one named build configuration.

        ``"plain"`` (compiled, unoptimized), ``"noinline"``
        (devirtualization only), ``"inline"`` (object inlining), or
        ``"manual"`` (manually annotated inlining only).
        """
        options = BUILD_OPTIONS[build]
        if options is None:
            return self.compile()
        return self.optimize(**options).program

    def run(
        self,
        build: str = "plain",
        cache_config: CacheConfig | None = None,
        tracer=None,
        **run_options,
    ) -> RunResult:
        """Execute one build on the instrumented VM.

        ``tracer`` overrides the session tracer for this run only.
        """
        return _run_program(
            self.program_for(build),
            cache_config,
            tracer=self.tracer if tracer is None else tracer,
            **run_options,
        )


# ----------------------------------------------------------------------
# Classic top-level API, as thin wrappers over a one-shot Session.


def compile_source(source: str, path: str = "<string>") -> IRProgram:
    """Compile mini-ICC++ source text to an :class:`IRProgram`."""
    return Session(source, path=path).compile()


def analyze(
    program: IRProgram,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
) -> AnalysisResult:
    """Flow-analyze ``program`` (see :func:`repro.analysis.analyze`)."""
    return Session(program=program, config=config, tracer=tracer).analyze()


def optimize(
    program: IRProgram,
    inline: bool = True,
    devirtualize: bool = True,
    manual_only: bool = False,
    inline_methods_pass: bool = True,
    cache_loads_pass: bool = True,
    dce_pass: bool = True,
    max_rounds: int = 1,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    analysis_cache: AnalysisCache | None = None,
) -> OptimizeReport:
    """Run the inlining pipeline on ``program`` (see
    :func:`repro.inlining.pipeline.optimize` for the options)."""
    session = Session(program=program, config=config, tracer=tracer)
    if analysis_cache is not None:
        session.analysis_cache = analysis_cache
    return session.optimize(
        inline=inline,
        devirtualize=devirtualize,
        manual_only=manual_only,
        inline_methods_pass=inline_methods_pass,
        cache_loads_pass=cache_loads_pass,
        dce_pass=dce_pass,
        max_rounds=max_rounds,
    )


def run_program(
    program: IRProgram,
    cache_config: CacheConfig | None = None,
    tracer=NULL_TRACER,
    **run_options,
) -> RunResult:
    """Execute ``program`` on the instrumented VM (see
    :func:`repro.runtime.run_program`)."""
    return Session(program=program, tracer=tracer).run(
        cache_config=cache_config, **run_options
    )
