"""The unified compile API.

:class:`Session` is the front door of the package: it owns the source
text, the analysis configuration, and the tracer, threads them through
every phase exactly once, and caches intermediate artifacts — the
compiled IR, analysis results (via a shared
:class:`~repro.analysis.AnalysisCache`), and one
:class:`~repro.inlining.pipeline.OptimizeReport` per distinct
:class:`CompileConfig`::

    from repro import CompileConfig, Session

    session = Session(SOURCE)
    program = session.compile()          # parse + lower once
    result = session.analyze()           # flow analysis of the raw IR
    report = session.optimize()          # object inlining ON (cached)
    run = session.run("inline")          # execute the inlined build

    session.optimize(CompileConfig(inline=False))   # devirtualize-only
    session.run()                        # run the unoptimized program

Repeated calls are free: ``compile`` parses once, ``optimize`` memoizes
per config content hash, and ``analyze``/``optimize`` share analysis
results for identical (program, config) pairs, so ``session.analyze()``
followed by ``session.optimize()`` runs the (expensive) fixpoint once.

:class:`CompileConfig` is the **canonical, immutable description of one
build**: the pipeline switches plus the analysis knobs, with one
canonical JSON serialization (:meth:`CompileConfig.to_dict`) and a
content hash (:meth:`CompileConfig.content_key`) computed by the same
:func:`repro.obs.history.config_key` the perf-history ledger hashes its
measurement configs with.  The service's artifact store
(:mod:`repro.service.store`) addresses compiled artifacts by
``(source_key, CompileConfig.content_key())`` — one hashing scheme
everywhere.

:class:`SessionPool` manages one session per (tenant, source) with LRU
bounds and a per-tenant child tracer lane — the long-lived form of the
API the compile service daemon (:mod:`repro.service`) is built on.

The classic top-level functions — :func:`compile_source`,
:func:`analyze`, :func:`optimize`, :func:`run_program` — remain as
documented shims over a one-shot session, and emit a
``DeprecationWarning``: new code should use :class:`Session` /
:class:`SessionPool` (or the underlying ``repro.ir`` / ``repro.runtime``
primitives when no caching is wanted).
"""

from __future__ import annotations

import dataclasses
import hashlib
import warnings
from collections import OrderedDict
from dataclasses import dataclass

from .analysis import AnalysisCache, AnalysisConfig, AnalysisResult
from .analysis import analyze as _analyze
from .inlining.pipeline import OptimizeReport
from .inlining.pipeline import optimize as _optimize
from .ir import compile_source as _compile_source
from .ir import format_program
from .ir.model import IRProgram
from .obs import NULL_METRICS, NULL_TRACER
from .obs.history import config_key as _config_key
from .runtime import CacheConfig, RunResult
from .runtime import run_program as _run_program


def source_key(source: str) -> str:
    """Content hash of a source program (stable across processes).

    The other half of the artifact-store address: an artifact is
    identified by ``(source_key(source), config.content_key())``.
    """
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class CompileConfig:
    """One immutable, content-hashable build configuration.

    Pipeline switches mirror :func:`repro.inlining.pipeline.optimize`;
    ``analysis`` carries the :class:`~repro.analysis.AnalysisConfig`
    knobs (``None`` means "the session's config, or the defaults").

    Instances are frozen so one object can safely key session memo
    tables, the service artifact store, and the perf-history ledger —
    all three hash :meth:`to_dict` through
    :func:`repro.obs.history.config_key`, so there is exactly one
    canonical serialization of "what was compiled".
    """

    inline: bool = True
    devirtualize: bool = True
    manual_only: bool = False
    inline_methods_pass: bool = True
    escape_pass: bool = True
    cache_loads_pass: bool = True
    dce_pass: bool = True
    max_rounds: int = 1
    analysis: AnalysisConfig | None = None

    @classmethod
    def for_build(cls, build: str, analysis: AnalysisConfig | None = None) -> "CompileConfig":
        """The named build configurations (``BUILD_CONFIGS``) as configs.

        ``"plain"`` has no pipeline at all and therefore no config;
        asking for it is an error — use :meth:`Session.compile`.
        """
        config = BUILD_CONFIGS[build]
        if config is None:
            raise ValueError(f"build {build!r} is the unoptimized program; it has no CompileConfig")
        if analysis is not None:
            config = dataclasses.replace(config, analysis=analysis)
        return config

    def resolved(self, analysis: AnalysisConfig | None = None) -> "CompileConfig":
        """This config with the analysis knobs made explicit."""
        if self.analysis is not None:
            return self
        return dataclasses.replace(self, analysis=analysis or AnalysisConfig())

    def pipeline_options(self) -> dict:
        """The keyword arguments for the underlying pipeline call."""
        options = dataclasses.asdict(self)
        options.pop("analysis")
        return options

    def to_dict(self) -> dict:
        """The canonical JSON-serializable form (hashed as-is)."""
        payload = dataclasses.asdict(self)
        payload["analysis"] = (
            dataclasses.asdict(self.analysis) if self.analysis is not None else None
        )
        return payload

    def content_key(self) -> str:
        """Content hash; same scheme as the perf-history ledger."""
        return _config_key(self.to_dict())


#: ``Session.run``/``program_for`` build names -> :class:`CompileConfig`.
#: ``"plain"`` is the unoptimized compiled program (no config).
BUILD_CONFIGS: dict[str, CompileConfig | None] = {
    "plain": None,
    "noinline": CompileConfig(inline=False),
    "inline": CompileConfig(inline=True),
    "noescape": CompileConfig(inline=True, escape_pass=False),
    "manual": CompileConfig(manual_only=True),
    "opt": CompileConfig(inline=True, max_rounds=3),
}

#: Legacy name -> kwargs mapping, kept for callers of the old
#: ``Session.optimize(**options)`` convenience form.
BUILD_OPTIONS: dict[str, dict[str, object] | None] = {
    "plain": None,
    "noinline": {"inline": False},
    "inline": {"inline": True},
    "noescape": {"inline": True, "escape_pass": False},
    "manual": {"manual_only": True},
    "opt": {"inline": True, "max_rounds": 3},
}


class Session:
    """One source program moving through the compile pipeline.

    Exactly one of ``source`` (mini-ICC++ text) or ``program`` (an
    already-lowered :class:`IRProgram`) must be given.  ``config`` and
    ``tracer`` are threaded through every subsequent phase.
    """

    def __init__(
        self,
        source: str | None = None,
        *,
        program: IRProgram | None = None,
        path: str = "<session>",
        config: AnalysisConfig | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        if (source is None) == (program is None):
            raise ValueError("Session needs exactly one of `source` or `program`")
        self._source = source
        self._path = path
        self._program = program
        self.config = config
        self.tracer = tracer
        #: Shared analysis memo: ``analyze()``, every ``optimize()`` build,
        #: and the pipeline's nested rounds all draw from this cache.
        self.analysis_cache = AnalysisCache()
        self._analysis: AnalysisResult | None = None
        self._reports: dict[str, OptimizeReport] = {}

    # ------------------------------------------------------------------
    # Identity.

    def source_key(self) -> str:
        """Content hash of this session's program.

        Source-backed sessions hash the source text (stable across
        processes); program-backed sessions hash the printed IR, which
        is stable for one compile but may embed process-local uids.
        """
        if self._source is not None:
            return source_key(self._source)
        return source_key(format_program(self.compile()))

    # ------------------------------------------------------------------
    # Pipeline phases.

    def compile(self) -> IRProgram:
        """Parse + lower the source to IR (cached)."""
        if self._program is None:
            self._program = _compile_source(self._source, self._path)
        return self._program

    def analyze(self, tracer=None) -> AnalysisResult:
        """Flow-analyze the compiled program (cached).

        ``tracer`` overrides the session tracer for this call — used by
        concurrent drivers (the bench harness, the service worker) that
        give every work unit its own tracer and merge them at join.  A
        memoized result is returned as-is: no phase re-runs, so nothing
        new is traced.
        """
        if self._analysis is None:
            program = self.compile()
            config = self.config or AnalysisConfig()
            result = self.analysis_cache.get(program, config)
            if result is None:
                result = _analyze(
                    program, config, self.tracer if tracer is None else tracer
                )
                self.analysis_cache.put(program, config, result)
            self._analysis = result
        return self._analysis

    def optimize(
        self,
        config: CompileConfig | None = None,
        *,
        tracer=None,
        metrics=None,
        **options,
    ) -> OptimizeReport:
        """Run the inlining pipeline; one cached report per config.

        The build is described by an explicit :class:`CompileConfig`
        (preferred — the same object the artifact store and perf ledger
        hash).  The legacy keyword form (``inline=``, ``manual_only=``,
        ``max_rounds=``, ...) is still accepted and is normalized into a
        ``CompileConfig``, so both forms share one memo table keyed by
        :meth:`CompileConfig.content_key`.  The analysis knobs come from
        ``config.analysis``, falling back to the session's
        ``AnalysisConfig``.  ``tracer`` overrides the session tracer for
        this call (see :meth:`analyze` — memoized reports are returned
        without re-tracing).  ``metrics`` (a
        :class:`repro.obs.metrics.MetricsRegistry`) receives per-stage
        pipeline observations for this call; like the tracer, a memoized
        report records nothing new.
        """
        if config is not None and options:
            raise TypeError(
                "pass either a CompileConfig or legacy keyword options, not both"
            )
        if config is None:
            config = CompileConfig(**options)
        resolved = config.resolved(self.config)
        key = resolved.content_key()
        report = self._reports.get(key)
        if report is None:
            report = _optimize(
                self.compile(),
                config=resolved.analysis,
                tracer=self.tracer if tracer is None else tracer,
                metrics=NULL_METRICS if metrics is None else metrics,
                analysis_cache=self.analysis_cache,
                **resolved.pipeline_options(),
            )
            self._reports[key] = report
        return report

    def program_for(self, build: str = "plain") -> IRProgram:
        """The program of one named build configuration.

        ``"plain"`` (compiled, unoptimized), ``"noinline"``
        (devirtualization only), ``"inline"`` (object inlining),
        ``"noescape"`` (object inlining with the escape stage disabled),
        or ``"manual"`` (manually annotated inlining only).
        """
        config = BUILD_CONFIGS[build]
        if config is None:
            return self.compile()
        return self.optimize(config).program

    def run(
        self,
        build: str = "plain",
        cache_config: CacheConfig | None = None,
        tracer=None,
        **run_options,
    ) -> RunResult:
        """Execute one build on the instrumented VM.

        ``tracer`` overrides the session tracer for this run only.
        """
        return _run_program(
            self.program_for(build),
            cache_config,
            tracer=self.tracer if tracer is None else tracer,
            **run_options,
        )


class SessionPool:
    """A bounded pool of sessions keyed by (tenant, source).

    The long-lived face of the API: a daemon (or any concurrent driver)
    asks the pool for *the* session of a source program and gets the
    same warm object back on every repeat — compiled IR, analysis
    fixpoint, and per-config reports all already in place.

    - **Per-tenant tracing** — each tenant gets its own
      :meth:`Tracer.child` lane, created on first use; session-level
      events of different tenants never interleave.  :meth:`close`
      merges every lane back into the parent tracer.
    - **LRU bounds** — at most ``max_sessions`` live sessions; the least
      recently used is evicted when a new one would exceed the bound.
      ``hits``/``misses``/``evictions`` count pool traffic.
    """

    def __init__(
        self,
        *,
        config: AnalysisConfig | None = None,
        tracer=NULL_TRACER,
        max_sessions: int = 64,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.config = config
        self.tracer = tracer
        self.max_sessions = max_sessions
        self._sessions: OrderedDict[tuple[str, str], Session] = OrderedDict()
        self._tenant_tracers: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._closed = False

    def __len__(self) -> int:
        return len(self._sessions)

    def tracer_for(self, tenant: str):
        """The tenant's tracer lane (a :meth:`Tracer.child`, cached)."""
        lane = self._tenant_tracers.get(tenant)
        if lane is None:
            lane = self.tracer.child()
            self._tenant_tracers[tenant] = lane
        return lane

    def session(
        self, source: str, *, tenant: str = "default", path: str | None = None
    ) -> Session:
        """The pooled session of ``source`` for ``tenant`` (LRU)."""
        key = (tenant, source_key(source))
        session = self._sessions.get(key)
        if session is not None:
            self.hits += 1
            self._sessions.move_to_end(key)
            return session
        self.misses += 1
        session = Session(
            source,
            path=path or f"<{tenant}:{key[1]}>",
            config=self.config,
            tracer=self.tracer_for(tenant),
        )
        self._sessions[key] = session
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evictions += 1
        return session

    def stats(self) -> dict:
        """Pool counters (JSON-serializable, for the service stats op)."""
        return {
            "sessions": len(self._sessions),
            "tenants": len(self._tenant_tracers),
            "max_sessions": self.max_sessions,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def close(self) -> None:
        """Merge every tenant lane into the parent tracer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.tracer.enabled:
            for lane in self._tenant_tracers.values():
                self.tracer.merge(lane)
        self._tenant_tracers.clear()
        self._sessions.clear()


# ----------------------------------------------------------------------
# Classic top-level API: documented, deprecated shims over a one-shot
# Session.  Internal code uses Session/SessionPool (or the primitives in
# repro.ir / repro.inlining.pipeline / repro.runtime directly).


def compile_source(source: str, path: str = "<string>") -> IRProgram:
    """Deprecated: compile mini-ICC++ source text to an :class:`IRProgram`.

    Use ``Session(source).compile()`` (or :func:`repro.ir.compile_source`
    when no session caching is wanted).
    """
    warnings.warn(
        "repro.compile_source() is deprecated; use Session(source).compile() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Session(source, path=path).compile()


def analyze(
    program: IRProgram,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
) -> AnalysisResult:
    """Deprecated: flow-analyze ``program``.

    Use ``Session(program=...).analyze()`` (or
    :func:`repro.analysis.analyze`).
    """
    warnings.warn(
        "repro.analyze() is deprecated; use Session(program=program).analyze() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Session(program=program, config=config, tracer=tracer).analyze()


def optimize(
    program: IRProgram,
    inline: bool = True,
    devirtualize: bool = True,
    manual_only: bool = False,
    inline_methods_pass: bool = True,
    escape_pass: bool = True,
    cache_loads_pass: bool = True,
    dce_pass: bool = True,
    max_rounds: int = 1,
    config: AnalysisConfig | None = None,
    tracer=NULL_TRACER,
    analysis_cache: AnalysisCache | None = None,
) -> OptimizeReport:
    """Deprecated: run the inlining pipeline on ``program``.

    Use ``Session(program=...).optimize(CompileConfig(...))`` (or
    :func:`repro.inlining.pipeline.optimize`).
    """
    warnings.warn(
        "repro.optimize() is deprecated; use "
        "Session(program=program).optimize(CompileConfig(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    session = Session(program=program, config=config, tracer=tracer)
    if analysis_cache is not None:
        session.analysis_cache = analysis_cache
    return session.optimize(
        CompileConfig(
            inline=inline,
            devirtualize=devirtualize,
            manual_only=manual_only,
            inline_methods_pass=inline_methods_pass,
            escape_pass=escape_pass,
            cache_loads_pass=cache_loads_pass,
            dce_pass=dce_pass,
            max_rounds=max_rounds,
        )
    )


def run_program(
    program: IRProgram,
    cache_config: CacheConfig | None = None,
    tracer=NULL_TRACER,
    **run_options,
) -> RunResult:
    """Deprecated: execute ``program`` on the instrumented VM.

    Use ``Session(program=...).run()`` (or
    :func:`repro.runtime.run_program`).
    """
    warnings.warn(
        "repro.run_program() is deprecated; use Session(program=program).run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Session(program=program, tracer=tracer).run(
        cache_config=cache_config, **run_options
    )
