"""Command-line driver.

Usage::

    repro serve [--socket PATH] [--workers N] [--trace-dir DIR] | repro serve --stop
    repro loadgen [--requests N] [--concurrency N] [--op OP] [--json FILE]
    repro metrics [SOCKET] [--prom | --watch [--interval S]]
    repro run PROGRAM.icc [--inline | --manual | --noinline] [--trace FILE] [--locality]
    repro analyze PROGRAM.icc [--json] [--trace FILE]
    repro ir PROGRAM.icc [--optimized]
    repro codegen PROGRAM.icc [--optimized]
    repro bench --figure {14,15,16,17,all} [--jobs N] [--repeat N] [--trace FILE] [--locality]
    repro bench --check [--repeat N] [--history FILE] [--baseline FILE]
    repro bench --check-baseline | --update-baseline [--baseline FILE] [--jobs N]
    repro perf record | list | diff REV1 REV2 | trend METRIC [--history FILE]
    repro export chrome TRACE [TRACE2 ...] [-o FILE]
    repro export flame TRACE [TRACE2 ...] [-o FILE]
    repro trace FILE [FILE ...]
    repro heatmap TRACE [TRACE2]

Every compile command drives a :class:`repro.Session`, so a command that
needs several builds of one program (or analysis + optimization) pays
for parsing and analysis once.

``--trace FILE`` streams compiler/VM observability events (phase spans,
counters, the inlining decision trace) as JSONL to FILE; ``repro trace
FILE`` summarizes such a file into per-phase time and counter tables.
``--locality`` additionally attributes every simulated cache access to a
``(kind, class, field, alloc_site)`` label and an address bucket;
``repro heatmap TRACE`` renders the resulting address-space heatmap, and
``repro heatmap BEFORE AFTER`` diffs two traces to show which fields'
misses a layout change eliminated.  See docs/OBSERVABILITY.md for the
event schema.

Performance history: ``repro bench`` (and ``repro perf record``) append
each measured run to the ``PERF_HISTORY.jsonl`` ledger; ``repro bench
--check`` issues statistical pass/regressed/improved verdicts against
the ledger's recent window; ``repro perf list/diff/trend`` browse it.
``repro export chrome|flame`` converts a span trace for Perfetto or
speedscope/flamegraph.pl.

Compile service: ``repro serve`` runs the asyncio compile daemon on a
local socket (content-addressed artifact cache, process-pool workers,
per-request timeouts, graceful shutdown — see docs/SERVICE.md);
``repro loadgen`` replays the benchmark corpus against it at a chosen
concurrency and reports throughput + p50/p95/p99 latency (client-side
*and* daemon-histogram-derived, cross-checked to agree within one
bucket), recording the run into the perf-history ledger.  ``repro
metrics`` scrapes a live daemon's metrics registry — a human panel by
default, Prometheus text exposition with ``--prom``, or a refreshing
TTY dashboard with ``--watch``.

(also runnable as ``python -m repro.cli ...``)
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import figures as bench_figures
from .bench.baseline import (
    DEFAULT_BASELINE_PATH,
    check_baseline,
    load_baseline,
    write_baseline,
)
from .bench.harness import run_all, run_performance_suite, run_suite_samples
from .codegen import generate
from .ir import format_program
from .obs import (
    NULL_TRACER,
    append_entry,
    check_entry,
    environment,
    export_chrome_file,
    export_collapsed_file,
    load_history,
    locality_from_file,
    make_entry,
    render_entry_diff,
    render_file,
    render_heatmap,
    render_history_list,
    render_locality_diff,
    render_summary,
    render_trend,
    render_verdicts,
    report_from_stats,
    resolve_rev,
    summarize_files,
    tracer_to_file,
)
from .obs.history import DEFAULT_HISTORY_PATH
from .session import Session


def _make_tracer(args: argparse.Namespace):
    """The JSONL tracer for ``--trace FILE``, or the free no-op tracer."""
    if getattr(args, "trace", None):
        return tracer_to_file(args.trace)
    return NULL_TRACER


def _make_session(args: argparse.Namespace, tracer=NULL_TRACER) -> Session:
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    return Session(source, path=args.program, tracer=tracer)


def _build_name(args: argparse.Namespace) -> str:
    if args.noinline:
        return "noinline"
    if args.manual:
        return "manual"
    if getattr(args, "no_escape", False):
        return "noescape"
    if args.inline:
        return "inline"
    return "plain"


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write observability events (spans, counters, decisions) as JSONL",
    )


def _add_build_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--inline", action="store_true", help="apply object inlining (Concert w/)"
    )
    group.add_argument(
        "--noinline",
        action="store_true",
        help="devirtualization only (Concert w/o inlining)",
    )
    group.add_argument(
        "--manual",
        action="store_true",
        help="inline only manually annotated locations (G++ proxy)",
    )
    group.add_argument(
        "--no-escape",
        action="store_true",
        help="object inlining with the escape-analysis stage disabled (ablation)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        session = _make_session(args, tracer)
        build = _build_name(args)
        if args.profile:
            from .runtime import profile_program

            report = profile_program(session.program_for(build))
            for line in report.result.output:
                print(line)
            print(report.render(), file=sys.stderr)
            return 0
        result = session.run(build, attribute_locality=args.locality)
        for line in result.output:
            print(line)
        if args.stats:
            for key, value in result.stats.summary().items():
                print(f"# {key} = {value}", file=sys.stderr)
        if args.locality:
            report = report_from_stats(result.stats.locality)
            print(render_heatmap(report), file=sys.stderr)
        return 0
    finally:
        tracer.close()


def _widening_rejections(report) -> list:
    """Candidates disqualified by contour widening (cap pressure)."""
    return [
        candidate
        for candidate in report.plan.candidates.values()
        if not candidate.accepted
        and candidate.reject_reason
        and "widened" in candidate.reject_reason
    ]


def _analysis_payload(args: argparse.Namespace, report) -> dict:
    """Machine-readable ``repro analyze --json`` output."""
    stats = report.clone_stats
    manager = report.analysis.manager
    return {
        "program": args.program,
        "analysis": {
            "method_contours": report.analysis.method_contour_count(),
            "object_contours": report.analysis.object_contour_count(),
            "contours_per_method": round(
                report.analysis.method_contours_per_method(), 4
            ),
            "widened_callables": len(manager.widened_callables),
            "widened_sites": len(manager.widened_sites),
        },
        "candidates": [
            candidate.decision_record()
            for candidate in report.plan.candidates.values()
        ],
        "widening_rejections": [
            candidate.describe() for candidate in _widening_rejections(report)
        ],
        "clones": {
            "method_partitions": stats.method_partitions,
            "function_partitions": stats.function_partitions,
            "class_variants": stats.class_variants,
            "view_classes": stats.view_classes,
            "installed_methods": stats.installed_methods,
        },
        "replan_rounds": report.replan_rounds,
        "nested_rounds": report.nested_rounds,
        "escape": _escape_payload(report),
    }


def _escape_payload(report) -> dict | None:
    """The escape stage's outcome for ``repro analyze --json``."""
    stats = report.escape_stats
    if stats is None:
        return None
    return {
        "sites": stats.sites,
        "scalar_replaced": stats.scalar_replaced,
        "stack_allocated": stats.stack_allocated,
        "exploded_inits": stats.exploded_inits,
        "rejected": dict(stats.rejected),
        "decisions": list(stats.decisions),
    }


def cmd_analyze(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        session = _make_session(args, tracer)
        report = session.optimize(inline=True)
    finally:
        tracer.close()
    if args.json:
        print(json.dumps(_analysis_payload(args, report), indent=2))
        return 0
    manager = report.analysis.manager
    print(f"method contours: {report.analysis.method_contour_count()}")
    print(f"object contours: {report.analysis.object_contour_count()}")
    print(f"contours/method: {report.analysis.method_contours_per_method():.2f}")
    print(f"widened callables: {len(manager.widened_callables)}")
    print(f"widened sites: {len(manager.widened_sites)}")
    print("candidates:")
    for candidate in report.plan.candidates.values():
        if candidate.accepted:
            status = "ACCEPT"
        else:
            stage = candidate.reject_stage or "?"
            status = f"reject[{stage}]: {candidate.reject_reason}"
        print(f"  {candidate.describe():30s} {status}")
    for candidate in _widening_rejections(report):
        print(
            f"WARNING: contour widening disqualified {candidate.describe()} "
            f"({candidate.reject_reason}); consider raising the contour caps "
            "in AnalysisConfig",
            file=sys.stderr,
        )
    stats = report.clone_stats
    print(
        f"clones: {stats.method_partitions} method partitions, "
        f"{stats.class_variants} class variants, {stats.view_classes} view classes"
    )
    escape = report.escape_stats
    if escape is not None and escape.sites:
        print(
            f"escape: {escape.sites} sites, {escape.scalar_replaced} scalar-replaced, "
            f"{escape.stack_allocated} frame-allocated"
        )
        for decision in escape.decisions:
            if decision["accepted"]:
                status = f"ACCEPT ({decision['mode']})"
            else:
                status = f"reject[{decision['stage']}]: {decision['reason']}"
            print(f"  {decision['candidate']:30s} {status}")
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    session = _make_session(args)
    print(format_program(session.program_for(_build_name(args))))
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    session = _make_session(args)
    result = generate(session.program_for(_build_name(args)))
    print(result.text)
    print(
        f"// {result.size_bytes} bytes, {result.reachable_callables} callables, "
        f"{result.reachable_classes} classes",
        file=sys.stderr,
    )
    return 0


def _measure_suite_entry(args: argparse.Namespace, tracer, jobs: int):
    """Run the Figure-17 suite ``--repeat`` times; (samples, ledger entry)."""
    samples = run_suite_samples(
        repeat=args.repeat, jobs=jobs, tracer=tracer, locality=args.locality
    )
    entry = make_entry(
        samples.ledger_benchmarks(),
        samples.ledger_config(),
        environment(jobs=jobs),
        repeat=args.repeat,
        note=getattr(args, "note", None),
    )
    return samples, entry


def _record_entry(args: argparse.Namespace, entry: dict, history: list[dict]) -> None:
    append_entry(args.history, entry)
    print(f"recorded ledger entry #{len(history)} in {args.history}")


def cmd_bench(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    jobs = max(1, args.jobs)
    locality = args.locality
    try:
        if args.check:
            # Statistical gate: verdicts from the ledger's recent window,
            # falling back to the single-sample baseline where history is
            # too thin (fresh clones stay protected).
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, json.JSONDecodeError):
                baseline = None
            samples, entry = _measure_suite_entry(args, tracer, jobs)
            history = load_history(args.history)
            verdicts = check_entry(entry, history, baseline=baseline)
            print(render_verdicts(verdicts))
            if not args.no_record:
                _record_entry(args, entry, history)
            return 1 if any(v.failed for v in verdicts) else 0
        if args.check_baseline or args.update_baseline:
            # The gate only compares compile-phase timings, so locality
            # attribution (a run-time feature) cannot perturb the verdict;
            # enabling it here just enriches the emitted trace.
            runs = run_performance_suite(tracer=tracer, jobs=jobs, locality=locality)
            if args.update_baseline:
                path = write_baseline(args.baseline, runs)
                print(f"wrote {path}")
                return 0
            regressions = check_baseline(runs, load_baseline(args.baseline))
            if regressions:
                print(f"{len(regressions)} phase regression(s) vs {args.baseline}:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print(f"phase timings within tolerance of {args.baseline}")
            return 0
        if args.output:
            from .bench.report import write_report

            path = write_report(args.output, tracer=tracer, jobs=jobs)
            print(f"wrote {path}")
            return 0
        wanted = args.figure
        if wanted in ("14", "15", "16"):
            runs = run_all(tracer=tracer, jobs=jobs, locality=locality)
            figure = getattr(bench_figures, f"figure{wanted}")(runs)
            print(figure.render())
        else:
            # Figure 17 (alone or in "all") measures the performance
            # suite through the repeat/sample path, so every such bench
            # run also lands one entry in the perf-history ledger.
            samples, entry = _measure_suite_entry(args, tracer, jobs)
            if wanted == "all":
                runs = run_all(tracer=tracer, jobs=jobs, locality=locality)
                for figure in (
                    bench_figures.figure14(runs),
                    bench_figures.figure15(runs),
                    bench_figures.figure16(runs),
                ):
                    print(figure.render())
                    print()
            print(bench_figures.figure17(samples.runs).render())
            if not args.no_record:
                _record_entry(args, entry, load_history(args.history))
        return 0
    finally:
        tracer.close()


def cmd_perf(args: argparse.Namespace) -> int:
    """The ``repro perf`` verb group: record / list / diff / trend."""
    if args.perf_command == "record":
        tracer = _make_tracer(args)
        try:
            _, entry = _measure_suite_entry(args, tracer, max(1, args.jobs))
        finally:
            tracer.close()
        history = load_history(args.history)
        _record_entry(args, entry, history)
        verdicts = check_entry(entry, history)
        print(render_verdicts(verdicts))
        return 0
    entries = load_history(args.history)
    if args.perf_command == "list":
        print(render_history_list(entries, limit=args.limit))
        return 0
    if args.perf_command == "diff":
        try:
            base = resolve_rev(entries, args.base)
            diff = resolve_rev(entries, args.diff)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(render_entry_diff(base, diff))
        return 0
    if args.perf_command == "trend":
        print(render_trend(entries, args.metric, build=args.build, last=args.last))
        return 0
    raise AssertionError(f"unknown perf command {args.perf_command!r}")


def cmd_export(args: argparse.Namespace) -> int:
    """Convert span JSONL trace(s) for Perfetto or speedscope.

    Multiple trace files merge into one export: spans carrying W3C-style
    hex ids in their meta (``trace_id``/``span_id``/``parent_span``) are
    stitched across files, so a client trace plus the daemon's
    ``service.jsonl`` renders each request as one connected tree.
    """
    files = list(args.file)
    shown = files[0] if len(files) == 1 else f"{files[0]} (+{len(files) - 1} more)"
    if args.export_format == "chrome":
        out = args.output or f"{files[0]}.chrome.json"
        exporter, what = export_chrome_file, "trace event(s)"
    else:
        out = args.output or f"{files[0]}.collapsed.txt"
        exporter, what = export_collapsed_file, "stack(s)"
    try:
        count = exporter(files if len(files) > 1 else files[0], out)
    except OSError as error:
        print(f"error: cannot export {shown}: {error}", file=sys.stderr)
        return 1
    print(f"wrote {count} {what} to {out}")
    if count == 0:
        print(
            f"note: no span events found in {shown} "
            "(was it recorded with --trace?)",
            file=sys.stderr,
        )
    return 0


def _parse_fault_plan(spec: str | None):
    """A :class:`FaultPlan` from ``error=0.1,hang=0.05,...`` (or None).

    Falls back to ``$REPRO_FAULT_PLAN`` (JSON) when no spec is given;
    returns ``None`` when neither names an active plan.
    """
    from .service import FaultPlan

    if spec is None:
        plan = FaultPlan.from_env()
        return plan if plan.active else None
    short = {
        "error": "error_rate",
        "hang": "hang_rate",
        "corrupt": "corrupt_rate",
        "crash": "crash_rate",
    }
    payload: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = short.get(key.strip(), key.strip())
        payload[key] = int(value) if key == "seed" else float(value)
    plan = FaultPlan.from_dict(payload)
    return plan if plan.active else None


def cmd_serve(args: argparse.Namespace) -> int:
    """Run (or stop) the compile-service daemon."""
    from .service import ServiceClient, ServiceError, serve

    if args.stop:
        try:
            with ServiceClient(args.socket, timeout=args.request_timeout) as client:
                client.shutdown()
        except (ServiceError, OSError) as error:
            print(f"error: cannot stop daemon at {args.socket}: {error}", file=sys.stderr)
            return 1
        print(f"daemon at {args.socket} is draining")
        return 0
    print(
        f"repro service listening on {args.socket} "
        f"(workers={args.workers}, store={args.store_entries} entries, "
        f"timeout={args.request_timeout:g}s)",
        flush=True,
    )
    if args.trace_dir:
        print(f"tracing to a fresh run directory under {args.trace_dir}", flush=True)
    try:
        fault_plan = _parse_fault_plan(getattr(args, "fault_plan", None))
    except ValueError as error:
        print(f"error: bad fault plan: {error}", file=sys.stderr)
        return 2
    if fault_plan is not None:
        print(f"CHAOS MODE: injecting faults per {fault_plan.to_dict()}", flush=True)
    service = serve(
        args.socket,
        workers=args.workers,
        request_timeout=args.request_timeout,
        store_entries=args.store_entries,
        trace_dir=args.trace_dir,
        allow_test_ops=args.allow_test_ops,
        fault_plan=fault_plan,
        slo_p99=args.slo_p99,
        slo_error_rate=args.slo_error_rate,
    )
    stats = service.describe()
    print(
        f"daemon stopped after {stats['requests']} request(s); "
        f"store: {stats['store']['hits']} hits / {stats['store']['misses']} misses"
    )
    if service.run_dir:
        print(f"trace run directory: {service.run_dir}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay the benchmark corpus against a live daemon."""
    from .service import ServiceThread, report_entry, run_loadgen, write_report_json

    try:
        fault_plan = _parse_fault_plan(getattr(args, "fault_plan", None))
    except ValueError as error:
        print(f"error: bad fault plan: {error}", file=sys.stderr)
        return 2
    if fault_plan is not None and not args.self_host:
        print("error: --fault-plan requires --self-host", file=sys.stderr)
        return 2
    self_hosted = None
    socket_path = args.socket
    if args.self_host:
        import tempfile

        socket_path = f"{tempfile.mkdtemp(prefix='repro-loadgen-')}/service.sock"
        self_hosted = ServiceThread(
            socket_path,
            workers=args.workers,
            trace_dir=args.trace_dir,
            fault_plan=fault_plan,
        ).start()
    if fault_plan is not None:
        print(f"CHAOS MODE: {fault_plan.to_dict()}", flush=True)
    try:
        try:
            report = run_loadgen(
                socket_path,
                requests=args.requests,
                concurrency=args.concurrency,
                op=args.op,
                build=args.build,
                timeout=args.timeout,
                verify=args.verify,
            )
        except OSError as error:
            print(
                f"error: cannot reach daemon at {socket_path}: {error}\n"
                "(start one with `repro serve`, or pass --self-host)",
                file=sys.stderr,
            )
            return 1
    finally:
        if self_hosted is not None:
            self_hosted.stop()
    print(report.render())
    if args.json:
        print(f"wrote {write_report_json(args.json, report)}")
    if not args.no_record:
        entry = report_entry(report, note=getattr(args, "note", None))
        _record_entry(args, entry, load_history(args.history))
    # Under chaos, error replies are expected (that is the point); what
    # must never happen is a client-visible *incorrect* reply.
    if report.incorrect:
        if args.verify:
            _print_failure_digest(socket_path, report)
        return 1
    if fault_plan is None:
        if report.errors:
            return 1
        # The two latency measurement paths (client wall clock vs the
        # daemon's request histogram) must agree within one bucket; a
        # wider drift is a metrics bug, and under a clean run it fails
        # the loadgen just like an error reply would.
        if report.percentile_check is not None and not report.percentile_check["ok"]:
            print(
                "error: client and daemon latency percentiles disagree by more "
                "than one histogram bucket",
                file=sys.stderr,
            )
            return 1
    return 0


def _print_failure_digest(socket_path: str, report) -> int:
    """Chaos triage: the daemon's metrics digest, printed on verify failure.

    The digest tells the triager at a glance what the daemon thinks
    happened — injected fault counts by kind, error rate, cache hit rate
    — next to the loadgen's client-side view of the same run.
    """
    from .obs.metrics import render_digest

    snapshot = report.metrics_snapshot
    if not snapshot:
        try:
            from .service import ServiceClient

            with ServiceClient(socket_path) as client:
                snapshot = client.metrics()
        except (OSError, RuntimeError):
            snapshot = None
    if snapshot:
        print("-- daemon metrics digest at failure --", file=sys.stderr)
        print(render_digest(snapshot), file=sys.stderr)
    return 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape a live daemon's metrics registry.

    Three renderings of the same ``metrics``-op snapshot: the human
    digest panel (default), Prometheus text exposition (``--prom``, for
    scrapers and CI assertions), and a refreshing TTY dashboard
    (``--watch``, Ctrl-C to stop).
    """
    import time as _time

    from .obs.metrics import render_digest, render_prom
    from .service import ServiceClient, ServiceError

    def _scrape() -> dict | None:
        try:
            with ServiceClient(args.socket, timeout=args.timeout) as client:
                return client.metrics()
        except (ServiceError, OSError) as error:
            print(
                f"error: cannot scrape daemon at {args.socket}: {error}",
                file=sys.stderr,
            )
            return None

    if args.watch:
        try:
            while True:
                snapshot = _scrape()
                if snapshot is None:
                    return 1
                # Home + clear-to-end keeps the panel flicker-free.
                sys.stdout.write("\x1b[H\x1b[2J")
                print(f"repro metrics @ {args.socket}  (every {args.interval:g}s)")
                print()
                print(render_digest(snapshot))
                sys.stdout.flush()
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
    snapshot = _scrape()
    if snapshot is None:
        return 1
    if args.prom:
        sys.stdout.write(render_prom(snapshot))
    else:
        print(render_digest(snapshot))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        summary = summarize_files(args.file)
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 1
    if not summary.phases and not summary.events and not summary.counters:
        name = args.file[0] if len(args.file) == 1 else f"{len(args.file)} files"
        print(
            f"no trace data in {name} (no span/counter/decision events; "
            "record with --trace FILE)"
        )
        return 0
    if len(args.file) == 1:
        print(render_file(args.file[0], top_counters=args.counters))
    else:
        # Several files (e.g. one per bench worker) render as one merged
        # summary; totals are additive across shards.
        print(render_summary(summary, top_counters=args.counters))
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    if len(args.file) > 2:
        print("heatmap takes one trace or a before/after pair", file=sys.stderr)
        return 2
    try:
        if len(args.file) == 1:
            print(render_heatmap(locality_from_file(args.file[0]), top=args.top))
            return 0
        before = locality_from_file(args.file[0])
        after = locality_from_file(args.file[1])
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 1
    print(
        render_locality_diff(
            before, after, top=args.top, names=(args.file[0], args.file[1])
        )
    )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: generated programs across the build matrix."""
    import json as json_module

    from .fuzz import run_fuzz

    client = None
    self_hosted = None
    if args.service:
        import tempfile

        from .service import ServiceClient, ServiceThread

        socket_path = f"{tempfile.mkdtemp(prefix='repro-fuzz-')}/service.sock"
        self_hosted = ServiceThread(socket_path, workers=args.workers).start()
        client = ServiceClient(socket_path, tenant="fuzz", connect_retries=5)
    try:
        report = run_fuzz(
            seeds=args.seeds,
            start_seed=args.start_seed,
            time_budget=args.time_budget,
            corpus_dir=args.corpus,
            max_steps=args.max_steps,
            client=client,
        )
    finally:
        if client is not None:
            client.close()
        if self_hosted is not None:
            self_hosted.stop()
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    if report.archived:
        print(f"archived {report.archived} reproducer(s) under {args.corpus}")
    return 0 if report.ok else 1


def cmd_reduce(args: argparse.Namespace) -> int:
    """Shrink a divergence reproducer to a minimal program."""
    from .fuzz import check_program, count_nodes, reduce_source
    from .lang import parse_program

    try:
        with open(args.file, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 1
    kind = args.kind
    if kind is None:
        result = check_program(source, seed=-1)
        if not result.divergences:
            print(
                f"error: {args.file} does not diverge (nothing to reduce); "
                "pass --kind to chase a specific divergence",
                file=sys.stderr,
            )
            return 1
        kind = result.divergences[0].kind
        print(f"chasing divergence kind {kind!r}", flush=True)
    before = count_nodes(parse_program(source))
    reduced = reduce_source(source, kind, max_rounds=args.max_rounds)
    after = count_nodes(parse_program(reduced))
    print(f"reduced {before} -> {after} AST nodes", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(reduced)
        print(f"wrote {args.out}")
    else:
        print(reduced, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Object inlining for a uniform object model (PLDI 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile (+optionally optimize) and run")
    run_parser.add_argument("program")
    _add_build_flags(run_parser)
    run_parser.add_argument("--stats", action="store_true", help="print VM statistics")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print a per-callable (self + inclusive) cycle profile",
    )
    run_parser.add_argument(
        "--locality", action="store_true",
        help="attribute cache misses to (class, field, alloc site) labels "
        "and print an address-space heatmap to stderr",
    )
    _add_trace_flag(run_parser)
    run_parser.set_defaults(func=cmd_run)

    analyze_parser = sub.add_parser("analyze", help="report analysis + inlining decisions")
    analyze_parser.add_argument("program")
    analyze_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable analysis output (for tooling / CI diffing)",
    )
    _add_trace_flag(analyze_parser)
    analyze_parser.set_defaults(func=cmd_analyze)

    ir_parser = sub.add_parser("ir", help="dump the IR")
    ir_parser.add_argument("program")
    _add_build_flags(ir_parser)
    ir_parser.set_defaults(func=cmd_ir)

    cg_parser = sub.add_parser("codegen", help="emit C-like code")
    cg_parser.add_argument("program")
    _add_build_flags(cg_parser)
    cg_parser.set_defaults(func=cmd_codegen)

    bench_parser = sub.add_parser("bench", help="regenerate the paper's figures")
    bench_parser.add_argument(
        "--figure", choices=["14", "15", "16", "17", "all"], default="all"
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", help="write the full markdown report to FILE"
    )
    bench_parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail if any compile phase regresses beyond the stored baseline",
    )
    bench_parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-measure and overwrite the stored phase-time baseline",
    )
    bench_parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE_PATH,
        help=f"baseline file for --check/--update-baseline (default {DEFAULT_BASELINE_PATH})",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan (benchmark, build) pairs over N worker processes "
        "(default 1 = serial; figures are identical either way)",
    )
    bench_parser.add_argument(
        "--locality", action="store_true",
        help="run benchmarks with cache-miss attribution; per-build "
        "locality rides along in the trace and the markdown report",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="measure the performance suite N times (cold each time) and "
        "record all samples in the perf-history ledger (default 1)",
    )
    bench_parser.add_argument(
        "--check", action="store_true",
        help="statistical regression check: verdicts vs the perf-history "
        "ledger's recent window (median + MAD), with BENCH_BASELINE.json "
        "as fallback while history is thin",
    )
    bench_parser.add_argument(
        "--history", metavar="FILE", default=DEFAULT_HISTORY_PATH,
        help=f"perf-history ledger (default {DEFAULT_HISTORY_PATH})",
    )
    bench_parser.add_argument(
        "--no-record", action="store_true",
        help="do not append this run to the perf-history ledger",
    )
    bench_parser.add_argument(
        "--note", metavar="TEXT", help="free-form note stored on the ledger entry"
    )
    _add_trace_flag(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    perf_parser = sub.add_parser(
        "perf", help="record, browse, and compare perf-history ledger entries"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)

    def _add_history_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--history", metavar="FILE", default=DEFAULT_HISTORY_PATH,
            help=f"perf-history ledger (default {DEFAULT_HISTORY_PATH})",
        )

    record_parser = perf_sub.add_parser(
        "record", help="measure the performance suite and append a ledger entry"
    )
    record_parser.add_argument("--repeat", type=int, default=3, metavar="N",
                               help="samples per phase (default 3)")
    record_parser.add_argument("--jobs", type=int, default=1, metavar="N")
    record_parser.add_argument("--locality", action="store_true",
                               help="also record locality totals")
    record_parser.add_argument("--note", metavar="TEXT",
                               help="free-form note stored on the entry")
    _add_history_flag(record_parser)
    _add_trace_flag(record_parser)
    record_parser.set_defaults(func=cmd_perf)

    list_parser = perf_sub.add_parser("list", help="list recorded runs")
    list_parser.add_argument("--limit", type=int, default=20, metavar="N")
    _add_history_flag(list_parser)
    list_parser.set_defaults(func=cmd_perf)

    diff_parser = perf_sub.add_parser(
        "diff", help="jitdiff-style comparison of two recorded runs"
    )
    diff_parser.add_argument(
        "base", help="ledger index (0, -1, ...) or git-revision prefix"
    )
    diff_parser.add_argument(
        "diff", help="ledger index (0, -1, ...) or git-revision prefix"
    )
    _add_history_flag(diff_parser)
    diff_parser.set_defaults(func=cmd_perf)

    trend_parser = perf_sub.add_parser(
        "trend", help="ASCII sparkline of a metric across the ledger"
    )
    trend_parser.add_argument(
        "metric",
        help="`cycles`, a phase name (`analyze`, `opt.dce`, ...), "
        "`optimize_seconds`, or `run_seconds`",
    )
    trend_parser.add_argument(
        "--build", default="inline", help="build to plot (default inline)"
    )
    trend_parser.add_argument("--last", type=int, default=40, metavar="N",
                              help="plot the last N entries (default 40)")
    _add_history_flag(trend_parser)
    trend_parser.set_defaults(func=cmd_perf)

    serve_parser = sub.add_parser(
        "serve", help="run the compile-service daemon on a local socket"
    )
    from .service.daemon import (
        DEFAULT_REQUEST_TIMEOUT,
        DEFAULT_SLO_ERROR_RATE,
        DEFAULT_SLO_P99,
        DEFAULT_SOCKET_PATH,
    )

    serve_parser.add_argument(
        "--socket", metavar="PATH", default=DEFAULT_SOCKET_PATH,
        help=f"unix socket to listen on (default {DEFAULT_SOCKET_PATH})",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="compile worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--request-timeout", type=float, default=DEFAULT_REQUEST_TIMEOUT, metavar="S",
        help=f"default per-request timeout in seconds (default {DEFAULT_REQUEST_TIMEOUT:g})",
    )
    serve_parser.add_argument(
        "--store-entries", type=int, default=256, metavar="N",
        help="artifact-store LRU bound (default 256 entries)",
    )
    serve_parser.add_argument(
        "--trace-dir", metavar="DIR",
        help="write JSONL service traces into a fresh run directory under DIR",
    )
    serve_parser.add_argument(
        "--stop", action="store_true",
        help="gracefully stop the daemon listening on --socket",
    )
    serve_parser.add_argument(
        "--allow-test-ops", action="store_true", help=argparse.SUPPRESS
    )
    serve_parser.add_argument(
        "--fault-plan", metavar="SPEC",
        help="chaos mode: inject worker faults, e.g. "
        "'error=0.05,hang=0.02,corrupt=0.02,crash=0.01' "
        "(default: $REPRO_FAULT_PLAN if set)",
    )
    serve_parser.add_argument(
        "--slo-p99", type=float, default=DEFAULT_SLO_P99, metavar="S",
        help=f"p99 latency target in seconds, exported as the "
        f"service_slo_p99_seconds gauge (default {DEFAULT_SLO_P99:g})",
    )
    serve_parser.add_argument(
        "--slo-error-rate", type=float, default=DEFAULT_SLO_ERROR_RATE, metavar="R",
        help=f"error-rate target in [0,1], exported as the "
        f"service_slo_error_rate gauge (default {DEFAULT_SLO_ERROR_RATE:g})",
    )
    serve_parser.set_defaults(func=cmd_serve)

    metrics_parser = sub.add_parser(
        "metrics",
        help="scrape a live daemon's metrics (digest, --prom, or --watch)",
    )
    metrics_parser.add_argument(
        "socket", nargs="?", default=DEFAULT_SOCKET_PATH, metavar="SOCKET",
        help=f"daemon socket (default {DEFAULT_SOCKET_PATH})",
    )
    metrics_parser.add_argument(
        "--prom", action="store_true",
        help="Prometheus text exposition instead of the human digest",
    )
    metrics_parser.add_argument(
        "--watch", action="store_true",
        help="refreshing TTY dashboard (Ctrl-C to stop)",
    )
    metrics_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period for --watch (default 2s)",
    )
    metrics_parser.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="scrape connection timeout (default 10s)",
    )
    metrics_parser.set_defaults(func=cmd_metrics)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="replay the benchmark corpus against the daemon; report "
        "throughput and p50/p95/p99 latency",
    )
    loadgen_parser.add_argument(
        "--socket", metavar="PATH", default=DEFAULT_SOCKET_PATH,
        help=f"daemon socket (default {DEFAULT_SOCKET_PATH})",
    )
    loadgen_parser.add_argument(
        "--requests", type=int, default=500, metavar="N",
        help="total requests to send (default 500)",
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="client threads, one connection each (default 8)",
    )
    loadgen_parser.add_argument(
        "--op", choices=["compile", "analyze", "optimize", "run"],
        default="optimize", help="request op to replay (default optimize)",
    )
    loadgen_parser.add_argument(
        "--build",
        choices=["plain", "noinline", "inline", "noescape", "manual", "opt"],
        default="inline", help="build for --op run (default inline)",
    )
    loadgen_parser.add_argument(
        "--timeout", type=float, metavar="S",
        help="per-request timeout to ask the daemon for",
    )
    loadgen_parser.add_argument(
        "--self-host", action="store_true",
        help="spin up a private in-process daemon for this run "
        "(no `repro serve` needed)",
    )
    loadgen_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for --self-host (default 2)",
    )
    loadgen_parser.add_argument(
        "--trace-dir", metavar="DIR", help="trace directory for --self-host"
    )
    loadgen_parser.add_argument(
        "--json", metavar="FILE", help="also write the full report as JSON"
    )
    loadgen_parser.add_argument(
        "--note", metavar="TEXT", help="free-form note stored on the ledger entry"
    )
    loadgen_parser.add_argument(
        "--no-record", action="store_true",
        help="do not append this run to the perf-history ledger",
    )
    loadgen_parser.add_argument(
        "--history", metavar="FILE", default=DEFAULT_HISTORY_PATH,
        help=f"perf-history ledger (default {DEFAULT_HISTORY_PATH})",
    )
    loadgen_parser.add_argument(
        "--verify", action="store_true",
        help="check every OK reply against an in-process oracle; "
        "incorrect replies fail the run",
    )
    loadgen_parser.add_argument(
        "--fault-plan", metavar="SPEC",
        help="chaos mode for --self-host: inject worker faults, e.g. "
        "'error=0.05,crash=0.01' (combine with --verify)",
    )
    loadgen_parser.set_defaults(func=cmd_loadgen)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing: run generated programs across every "
        "build config and flag divergences",
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=100, metavar="N",
        help="number of generated programs (default 100)",
    )
    fuzz_parser.add_argument(
        "--start-seed", type=int, default=0, metavar="N",
        help="first seed (default 0)",
    )
    fuzz_parser.add_argument(
        "--time-budget", type=float, metavar="S",
        help="stop after S seconds even if seeds remain",
    )
    fuzz_parser.add_argument(
        "--corpus", metavar="DIR",
        help="archive offending programs (a few per triage bucket) under DIR",
    )
    fuzz_parser.add_argument(
        "--report", metavar="FILE", help="write the triage report as JSON"
    )
    fuzz_parser.add_argument(
        "--max-steps", type=int, default=2_000_000, metavar="N",
        help="VM step budget for the reference build (default 2000000)",
    )
    fuzz_parser.add_argument(
        "--service", action="store_true",
        help="also round-trip every program through a private daemon and "
        "compare its replies",
    )
    fuzz_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for --service (default 2)",
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)

    reduce_parser = sub.add_parser(
        "reduce", help="shrink a divergence reproducer to a minimal program"
    )
    reduce_parser.add_argument("file", help="mini-ICC++ source that diverges")
    reduce_parser.add_argument(
        "--kind", metavar="KIND",
        help="divergence kind to preserve (default: auto-detect)",
    )
    reduce_parser.add_argument(
        "--out", metavar="FILE", help="write the reduced program here"
    )
    reduce_parser.add_argument(
        "--max-rounds", type=int, default=40, metavar="N",
        help="greedy reduction passes (default 40)",
    )
    reduce_parser.set_defaults(func=cmd_reduce)

    export_parser = sub.add_parser(
        "export", help="convert a span trace for Perfetto or speedscope"
    )
    export_sub = export_parser.add_subparsers(dest="export_format", required=True)
    chrome_parser = export_sub.add_parser(
        "chrome",
        help="Chrome trace-event JSON (load in ui.perfetto.dev); one "
        "timeline lane per merged worker shard",
    )
    chrome_parser.add_argument(
        "file", nargs="+",
        help="span JSONL trace(s); several files (e.g. a client trace + "
        "the daemon's service.jsonl) merge and stitch into one timeline",
    )
    chrome_parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="output path (default TRACE.chrome.json)",
    )
    chrome_parser.set_defaults(func=cmd_export)
    flame_parser = export_sub.add_parser(
        "flame",
        help="collapsed stacks with self-time weights (speedscope / flamegraph.pl)",
    )
    flame_parser.add_argument(
        "file", nargs="+",
        help="span JSONL trace(s); several files merge into one profile",
    )
    flame_parser.add_argument(
        "-o", "--output", metavar="FILE",
        help="output path (default TRACE.collapsed.txt)",
    )
    flame_parser.set_defaults(func=cmd_export)

    trace_parser = sub.add_parser("trace", help="summarize JSONL trace file(s)")
    trace_parser.add_argument(
        "file", nargs="+",
        help="trace file(s); several files render one merged summary",
    )
    trace_parser.add_argument(
        "--counters", type=int, default=20, metavar="N",
        help="show the top N counters (default 20)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    heatmap_parser = sub.add_parser(
        "heatmap",
        help="render an address-space miss heatmap from a locality trace; "
        "two traces render a side-by-side locality diff",
    )
    heatmap_parser.add_argument(
        "file", nargs="+",
        help="one trace: heatmap + per-field miss table; "
        "two traces (before after): locality diff",
    )
    heatmap_parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="show the top N labels (default 20)",
    )
    heatmap_parser.set_defaults(func=cmd_heatmap)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
