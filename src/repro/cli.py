"""Command-line driver.

Usage::

    repro run PROGRAM.icc [--inline | --manual | --noinline] [--trace FILE] [--locality]
    repro analyze PROGRAM.icc [--json] [--trace FILE]
    repro ir PROGRAM.icc [--optimized]
    repro codegen PROGRAM.icc [--optimized]
    repro bench --figure {14,15,16,17,all} [--jobs N] [--trace FILE] [--locality]
    repro bench --check-baseline | --update-baseline [--baseline FILE] [--jobs N]
    repro trace FILE [FILE ...]
    repro heatmap TRACE [TRACE2]

Every compile command drives a :class:`repro.Session`, so a command that
needs several builds of one program (or analysis + optimization) pays
for parsing and analysis once.

``--trace FILE`` streams compiler/VM observability events (phase spans,
counters, the inlining decision trace) as JSONL to FILE; ``repro trace
FILE`` summarizes such a file into per-phase time and counter tables.
``--locality`` additionally attributes every simulated cache access to a
``(kind, class, field, alloc_site)`` label and an address bucket;
``repro heatmap TRACE`` renders the resulting address-space heatmap, and
``repro heatmap BEFORE AFTER`` diffs two traces to show which fields'
misses a layout change eliminated.  See docs/OBSERVABILITY.md for the
event schema.

(also runnable as ``python -m repro.cli ...``)
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import figures as bench_figures
from .bench.baseline import (
    DEFAULT_BASELINE_PATH,
    check_baseline,
    load_baseline,
    write_baseline,
)
from .bench.harness import run_all, run_performance_suite
from .codegen import generate
from .ir import format_program
from .obs import (
    NULL_TRACER,
    locality_from_file,
    render_file,
    render_heatmap,
    render_locality_diff,
    render_summary,
    report_from_stats,
    summarize_files,
    tracer_to_file,
)
from .session import Session


def _make_tracer(args: argparse.Namespace):
    """The JSONL tracer for ``--trace FILE``, or the free no-op tracer."""
    if getattr(args, "trace", None):
        return tracer_to_file(args.trace)
    return NULL_TRACER


def _make_session(args: argparse.Namespace, tracer=NULL_TRACER) -> Session:
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    return Session(source, path=args.program, tracer=tracer)


def _build_name(args: argparse.Namespace) -> str:
    if args.noinline:
        return "noinline"
    if args.manual:
        return "manual"
    if args.inline:
        return "inline"
    return "plain"


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write observability events (spans, counters, decisions) as JSONL",
    )


def _add_build_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--inline", action="store_true", help="apply object inlining (Concert w/)"
    )
    group.add_argument(
        "--noinline",
        action="store_true",
        help="devirtualization only (Concert w/o inlining)",
    )
    group.add_argument(
        "--manual",
        action="store_true",
        help="inline only manually annotated locations (G++ proxy)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        session = _make_session(args, tracer)
        build = _build_name(args)
        if args.profile:
            from .runtime import profile_program

            report = profile_program(session.program_for(build))
            for line in report.result.output:
                print(line)
            print(report.render(), file=sys.stderr)
            return 0
        result = session.run(build, attribute_locality=args.locality)
        for line in result.output:
            print(line)
        if args.stats:
            for key, value in result.stats.summary().items():
                print(f"# {key} = {value}", file=sys.stderr)
        if args.locality:
            report = report_from_stats(result.stats.locality)
            print(render_heatmap(report), file=sys.stderr)
        return 0
    finally:
        tracer.close()


def _widening_rejections(report) -> list:
    """Candidates disqualified by contour widening (cap pressure)."""
    return [
        candidate
        for candidate in report.plan.candidates.values()
        if not candidate.accepted
        and candidate.reject_reason
        and "widened" in candidate.reject_reason
    ]


def _analysis_payload(args: argparse.Namespace, report) -> dict:
    """Machine-readable ``repro analyze --json`` output."""
    stats = report.clone_stats
    manager = report.analysis.manager
    return {
        "program": args.program,
        "analysis": {
            "method_contours": report.analysis.method_contour_count(),
            "object_contours": report.analysis.object_contour_count(),
            "contours_per_method": round(
                report.analysis.method_contours_per_method(), 4
            ),
            "widened_callables": len(manager.widened_callables),
            "widened_sites": len(manager.widened_sites),
        },
        "candidates": [
            candidate.decision_record()
            for candidate in report.plan.candidates.values()
        ],
        "widening_rejections": [
            candidate.describe() for candidate in _widening_rejections(report)
        ],
        "clones": {
            "method_partitions": stats.method_partitions,
            "function_partitions": stats.function_partitions,
            "class_variants": stats.class_variants,
            "view_classes": stats.view_classes,
            "installed_methods": stats.installed_methods,
        },
        "replan_rounds": report.replan_rounds,
        "nested_rounds": report.nested_rounds,
    }


def cmd_analyze(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        session = _make_session(args, tracer)
        report = session.optimize(inline=True)
    finally:
        tracer.close()
    if args.json:
        print(json.dumps(_analysis_payload(args, report), indent=2))
        return 0
    manager = report.analysis.manager
    print(f"method contours: {report.analysis.method_contour_count()}")
    print(f"object contours: {report.analysis.object_contour_count()}")
    print(f"contours/method: {report.analysis.method_contours_per_method():.2f}")
    print(f"widened callables: {len(manager.widened_callables)}")
    print(f"widened sites: {len(manager.widened_sites)}")
    print("candidates:")
    for candidate in report.plan.candidates.values():
        if candidate.accepted:
            status = "ACCEPT"
        else:
            stage = candidate.reject_stage or "?"
            status = f"reject[{stage}]: {candidate.reject_reason}"
        print(f"  {candidate.describe():30s} {status}")
    for candidate in _widening_rejections(report):
        print(
            f"WARNING: contour widening disqualified {candidate.describe()} "
            f"({candidate.reject_reason}); consider raising the contour caps "
            "in AnalysisConfig",
            file=sys.stderr,
        )
    stats = report.clone_stats
    print(
        f"clones: {stats.method_partitions} method partitions, "
        f"{stats.class_variants} class variants, {stats.view_classes} view classes"
    )
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    session = _make_session(args)
    print(format_program(session.program_for(_build_name(args))))
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    session = _make_session(args)
    result = generate(session.program_for(_build_name(args)))
    print(result.text)
    print(
        f"// {result.size_bytes} bytes, {result.reachable_callables} callables, "
        f"{result.reachable_classes} classes",
        file=sys.stderr,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    jobs = max(1, args.jobs)
    locality = args.locality
    try:
        if args.check_baseline or args.update_baseline:
            # The gate only compares compile-phase timings, so locality
            # attribution (a run-time feature) cannot perturb the verdict;
            # enabling it here just enriches the emitted trace.
            runs = run_performance_suite(tracer=tracer, jobs=jobs, locality=locality)
            if args.update_baseline:
                path = write_baseline(args.baseline, runs)
                print(f"wrote {path}")
                return 0
            regressions = check_baseline(runs, load_baseline(args.baseline))
            if regressions:
                print(f"{len(regressions)} phase regression(s) vs {args.baseline}:")
                for line in regressions:
                    print(f"  {line}")
                return 1
            print(f"phase timings within tolerance of {args.baseline}")
            return 0
        if args.output:
            from .bench.report import write_report

            path = write_report(args.output, tracer=tracer, jobs=jobs)
            print(f"wrote {path}")
            return 0
        wanted = args.figure
        if wanted in ("14", "15", "16"):
            runs = run_all(tracer=tracer, jobs=jobs, locality=locality)
            figure = getattr(bench_figures, f"figure{wanted}")(runs)
            print(figure.render())
        elif wanted == "17":
            print(
                bench_figures.figure17(
                    run_performance_suite(tracer=tracer, jobs=jobs, locality=locality)
                ).render()
            )
        else:
            runs = run_all(tracer=tracer, jobs=jobs, locality=locality)
            performance = run_performance_suite(
                tracer=tracer, jobs=jobs, locality=locality
            )
            for figure in (
                bench_figures.figure14(runs),
                bench_figures.figure15(runs),
                bench_figures.figure16(runs),
                bench_figures.figure17(performance),
            ):
                print(figure.render())
                print()
        return 0
    finally:
        tracer.close()


def cmd_trace(args: argparse.Namespace) -> int:
    if len(args.file) == 1:
        print(render_file(args.file[0], top_counters=args.counters))
    else:
        # Several files (e.g. one per bench worker) render as one merged
        # summary; totals are additive across shards.
        summary = summarize_files(args.file)
        print(render_summary(summary, top_counters=args.counters))
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    if len(args.file) > 2:
        print("heatmap takes one trace or a before/after pair", file=sys.stderr)
        return 2
    if len(args.file) == 1:
        print(render_heatmap(locality_from_file(args.file[0]), top=args.top))
        return 0
    before = locality_from_file(args.file[0])
    after = locality_from_file(args.file[1])
    print(
        render_locality_diff(
            before, after, top=args.top, names=(args.file[0], args.file[1])
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Object inlining for a uniform object model (PLDI 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile (+optionally optimize) and run")
    run_parser.add_argument("program")
    _add_build_flags(run_parser)
    run_parser.add_argument("--stats", action="store_true", help="print VM statistics")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print a per-callable (self + inclusive) cycle profile",
    )
    run_parser.add_argument(
        "--locality", action="store_true",
        help="attribute cache misses to (class, field, alloc site) labels "
        "and print an address-space heatmap to stderr",
    )
    _add_trace_flag(run_parser)
    run_parser.set_defaults(func=cmd_run)

    analyze_parser = sub.add_parser("analyze", help="report analysis + inlining decisions")
    analyze_parser.add_argument("program")
    analyze_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable analysis output (for tooling / CI diffing)",
    )
    _add_trace_flag(analyze_parser)
    analyze_parser.set_defaults(func=cmd_analyze)

    ir_parser = sub.add_parser("ir", help="dump the IR")
    ir_parser.add_argument("program")
    _add_build_flags(ir_parser)
    ir_parser.set_defaults(func=cmd_ir)

    cg_parser = sub.add_parser("codegen", help="emit C-like code")
    cg_parser.add_argument("program")
    _add_build_flags(cg_parser)
    cg_parser.set_defaults(func=cmd_codegen)

    bench_parser = sub.add_parser("bench", help="regenerate the paper's figures")
    bench_parser.add_argument(
        "--figure", choices=["14", "15", "16", "17", "all"], default="all"
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", help="write the full markdown report to FILE"
    )
    bench_parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail if any compile phase regresses beyond the stored baseline",
    )
    bench_parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-measure and overwrite the stored phase-time baseline",
    )
    bench_parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE_PATH,
        help=f"baseline file for --check/--update-baseline (default {DEFAULT_BASELINE_PATH})",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan (benchmark, build) pairs over N worker processes "
        "(default 1 = serial; figures are identical either way)",
    )
    bench_parser.add_argument(
        "--locality", action="store_true",
        help="run benchmarks with cache-miss attribution; per-build "
        "locality rides along in the trace and the markdown report",
    )
    _add_trace_flag(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    trace_parser = sub.add_parser("trace", help="summarize JSONL trace file(s)")
    trace_parser.add_argument(
        "file", nargs="+",
        help="trace file(s); several files render one merged summary",
    )
    trace_parser.add_argument(
        "--counters", type=int, default=20, metavar="N",
        help="show the top N counters (default 20)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    heatmap_parser = sub.add_parser(
        "heatmap",
        help="render an address-space miss heatmap from a locality trace; "
        "two traces render a side-by-side locality diff",
    )
    heatmap_parser.add_argument(
        "file", nargs="+",
        help="one trace: heatmap + per-field miss table; "
        "two traces (before after): locality diff",
    )
    heatmap_parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="show the top N labels (default 20)",
    )
    heatmap_parser.set_defaults(func=cmd_heatmap)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
