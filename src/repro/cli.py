"""Command-line driver.

Usage::

    repro run PROGRAM.icc [--inline | --manual | --noinline]
    repro analyze PROGRAM.icc
    repro ir PROGRAM.icc [--optimized]
    repro codegen PROGRAM.icc [--optimized]
    repro bench --figure {14,15,16,17,all}

(also runnable as ``python -m repro.cli ...``)
"""

from __future__ import annotations

import argparse
import sys

from .bench import figures as bench_figures
from .bench.harness import run_all, run_performance_suite
from .codegen import generate
from .inlining.pipeline import optimize
from .ir import compile_source, format_program
from .runtime import run_program


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read(), path)


def _build_program(args: argparse.Namespace):
    program = _load(args.program)
    if args.noinline:
        return optimize(program, inline=False).program
    if args.manual:
        return optimize(program, manual_only=True).program
    if args.inline:
        return optimize(program, inline=True).program
    return program


def _add_build_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--inline", action="store_true", help="apply object inlining (Concert w/)"
    )
    group.add_argument(
        "--noinline",
        action="store_true",
        help="devirtualization only (Concert w/o inlining)",
    )
    group.add_argument(
        "--manual",
        action="store_true",
        help="inline only manually annotated locations (G++ proxy)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    program = _build_program(args)
    if args.profile:
        from .runtime import profile_program

        report = profile_program(program)
        for line in report.result.output:
            print(line)
        print(report.render(), file=sys.stderr)
        return 0
    result = run_program(program)
    for line in result.output:
        print(line)
    if args.stats:
        for key, value in result.stats.summary().items():
            print(f"# {key} = {value}", file=sys.stderr)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    program = _load(args.program)
    report = optimize(program, inline=True)
    print(f"method contours: {report.analysis.method_contour_count()}")
    print(f"object contours: {report.analysis.object_contour_count()}")
    print(f"contours/method: {report.analysis.method_contours_per_method():.2f}")
    print("candidates:")
    for candidate in report.plan.candidates.values():
        status = "ACCEPT" if candidate.accepted else f"reject: {candidate.reject_reason}"
        print(f"  {candidate.describe():30s} {status}")
    stats = report.clone_stats
    print(
        f"clones: {stats.method_partitions} method partitions, "
        f"{stats.class_variants} class variants, {stats.view_classes} view classes"
    )
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    print(format_program(_build_program(args)))
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    result = generate(_build_program(args))
    print(result.text)
    print(
        f"// {result.size_bytes} bytes, {result.reachable_callables} callables, "
        f"{result.reachable_classes} classes",
        file=sys.stderr,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.output:
        from .bench.report import write_report

        path = write_report(args.output)
        print(f"wrote {path}")
        return 0
    wanted = args.figure
    if wanted in ("14", "15", "16"):
        runs = run_all()
        figure = getattr(bench_figures, f"figure{wanted}")(runs)
        print(figure.render())
    elif wanted == "17":
        print(bench_figures.figure17(run_performance_suite()).render())
    else:
        for figure in bench_figures.all_figures():
            print(figure.render())
            print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Object inlining for a uniform object model (PLDI 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile (+optionally optimize) and run")
    run_parser.add_argument("program")
    _add_build_flags(run_parser)
    run_parser.add_argument("--stats", action="store_true", help="print VM statistics")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print a per-callable (inclusive) cycle profile",
    )
    run_parser.set_defaults(func=cmd_run)

    analyze_parser = sub.add_parser("analyze", help="report analysis + inlining decisions")
    analyze_parser.add_argument("program")
    analyze_parser.set_defaults(func=cmd_analyze)

    ir_parser = sub.add_parser("ir", help="dump the IR")
    ir_parser.add_argument("program")
    _add_build_flags(ir_parser)
    ir_parser.set_defaults(func=cmd_ir)

    cg_parser = sub.add_parser("codegen", help="emit C-like code")
    cg_parser.add_argument("program")
    _add_build_flags(cg_parser)
    cg_parser.set_defaults(func=cmd_codegen)

    bench_parser = sub.add_parser("bench", help="regenerate the paper's figures")
    bench_parser.add_argument(
        "--figure", choices=["14", "15", "16", "17", "all"], default="all"
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", help="write the full markdown report to FILE"
    )
    bench_parser.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
