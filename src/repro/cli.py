"""Command-line driver.

Usage::

    repro run PROGRAM.icc [--inline | --manual | --noinline] [--trace FILE]
    repro analyze PROGRAM.icc [--json] [--trace FILE]
    repro ir PROGRAM.icc [--optimized]
    repro codegen PROGRAM.icc [--optimized]
    repro bench --figure {14,15,16,17,all} [--trace FILE]
    repro trace FILE

``--trace FILE`` streams compiler/VM observability events (phase spans,
counters, the inlining decision trace) as JSONL to FILE; ``repro trace
FILE`` summarizes such a file into per-phase time and counter tables.
See docs/OBSERVABILITY.md for the event schema.

(also runnable as ``python -m repro.cli ...``)
"""

from __future__ import annotations

import argparse
import json
import sys

from .bench import figures as bench_figures
from .bench.harness import run_all, run_performance_suite
from .codegen import generate
from .inlining.pipeline import optimize
from .ir import compile_source, format_program
from .obs import NULL_TRACER, render_file, tracer_to_file
from .runtime import run_program


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read(), path)


def _make_tracer(args: argparse.Namespace):
    """The JSONL tracer for ``--trace FILE``, or the free no-op tracer."""
    if getattr(args, "trace", None):
        return tracer_to_file(args.trace)
    return NULL_TRACER


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write observability events (spans, counters, decisions) as JSONL",
    )


def _build_program(args: argparse.Namespace, tracer=NULL_TRACER):
    program = _load(args.program)
    if args.noinline:
        return optimize(program, inline=False, tracer=tracer).program
    if args.manual:
        return optimize(program, manual_only=True, tracer=tracer).program
    if args.inline:
        return optimize(program, inline=True, tracer=tracer).program
    return program


def _add_build_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--inline", action="store_true", help="apply object inlining (Concert w/)"
    )
    group.add_argument(
        "--noinline",
        action="store_true",
        help="devirtualization only (Concert w/o inlining)",
    )
    group.add_argument(
        "--manual",
        action="store_true",
        help="inline only manually annotated locations (G++ proxy)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        program = _build_program(args, tracer)
        if args.profile:
            from .runtime import profile_program

            report = profile_program(program)
            for line in report.result.output:
                print(line)
            print(report.render(), file=sys.stderr)
            return 0
        result = run_program(program, tracer=tracer)
        for line in result.output:
            print(line)
        if args.stats:
            for key, value in result.stats.summary().items():
                print(f"# {key} = {value}", file=sys.stderr)
        return 0
    finally:
        tracer.close()


def _analysis_payload(args: argparse.Namespace, report) -> dict:
    """Machine-readable ``repro analyze --json`` output."""
    stats = report.clone_stats
    return {
        "program": args.program,
        "analysis": {
            "method_contours": report.analysis.method_contour_count(),
            "object_contours": report.analysis.object_contour_count(),
            "contours_per_method": round(
                report.analysis.method_contours_per_method(), 4
            ),
        },
        "candidates": [
            candidate.decision_record()
            for candidate in report.plan.candidates.values()
        ],
        "clones": {
            "method_partitions": stats.method_partitions,
            "function_partitions": stats.function_partitions,
            "class_variants": stats.class_variants,
            "view_classes": stats.view_classes,
            "installed_methods": stats.installed_methods,
        },
        "replan_rounds": report.replan_rounds,
        "nested_rounds": report.nested_rounds,
    }


def cmd_analyze(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        program = _load(args.program)
        report = optimize(program, inline=True, tracer=tracer)
    finally:
        tracer.close()
    if args.json:
        print(json.dumps(_analysis_payload(args, report), indent=2))
        return 0
    print(f"method contours: {report.analysis.method_contour_count()}")
    print(f"object contours: {report.analysis.object_contour_count()}")
    print(f"contours/method: {report.analysis.method_contours_per_method():.2f}")
    print("candidates:")
    for candidate in report.plan.candidates.values():
        if candidate.accepted:
            status = "ACCEPT"
        else:
            stage = candidate.reject_stage or "?"
            status = f"reject[{stage}]: {candidate.reject_reason}"
        print(f"  {candidate.describe():30s} {status}")
    stats = report.clone_stats
    print(
        f"clones: {stats.method_partitions} method partitions, "
        f"{stats.class_variants} class variants, {stats.view_classes} view classes"
    )
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    print(format_program(_build_program(args)))
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    result = generate(_build_program(args))
    print(result.text)
    print(
        f"// {result.size_bytes} bytes, {result.reachable_callables} callables, "
        f"{result.reachable_classes} classes",
        file=sys.stderr,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    try:
        if args.output:
            from .bench.report import write_report

            path = write_report(args.output, tracer=tracer)
            print(f"wrote {path}")
            return 0
        wanted = args.figure
        if wanted in ("14", "15", "16"):
            runs = run_all(tracer=tracer)
            figure = getattr(bench_figures, f"figure{wanted}")(runs)
            print(figure.render())
        elif wanted == "17":
            print(bench_figures.figure17(run_performance_suite(tracer=tracer)).render())
        else:
            for figure in bench_figures.all_figures():
                print(figure.render())
                print()
        return 0
    finally:
        tracer.close()


def cmd_trace(args: argparse.Namespace) -> int:
    print(render_file(args.file, top_counters=args.counters))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Object inlining for a uniform object model (PLDI 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile (+optionally optimize) and run")
    run_parser.add_argument("program")
    _add_build_flags(run_parser)
    run_parser.add_argument("--stats", action="store_true", help="print VM statistics")
    run_parser.add_argument(
        "--profile", action="store_true",
        help="print a per-callable (self + inclusive) cycle profile",
    )
    _add_trace_flag(run_parser)
    run_parser.set_defaults(func=cmd_run)

    analyze_parser = sub.add_parser("analyze", help="report analysis + inlining decisions")
    analyze_parser.add_argument("program")
    analyze_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable analysis output (for tooling / CI diffing)",
    )
    _add_trace_flag(analyze_parser)
    analyze_parser.set_defaults(func=cmd_analyze)

    ir_parser = sub.add_parser("ir", help="dump the IR")
    ir_parser.add_argument("program")
    _add_build_flags(ir_parser)
    ir_parser.set_defaults(func=cmd_ir)

    cg_parser = sub.add_parser("codegen", help="emit C-like code")
    cg_parser.add_argument("program")
    _add_build_flags(cg_parser)
    cg_parser.set_defaults(func=cmd_codegen)

    bench_parser = sub.add_parser("bench", help="regenerate the paper's figures")
    bench_parser.add_argument(
        "--figure", choices=["14", "15", "16", "17", "all"], default="all"
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", help="write the full markdown report to FILE"
    )
    _add_trace_flag(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)

    trace_parser = sub.add_parser("trace", help="summarize a JSONL trace file")
    trace_parser.add_argument("file")
    trace_parser.add_argument(
        "--counters", type=int, default=20, metavar="N",
        help="show the top N counters (default 20)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
