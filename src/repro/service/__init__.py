"""Compile-as-a-service: the long-lived daemon around the pipeline.

The pieces, bottom-up:

- :mod:`~repro.service.store` — the content-addressed artifact cache:
  ``(op, source hash, CompileConfig hash) -> pickled IR + analysis
  summary + reply``, LRU-bounded, with hit/miss/eviction/corruption
  counters exported through :mod:`repro.obs`.
- :mod:`~repro.service.protocol` — newline-delimited JSON over a unix
  socket (requests, responses, ops).
- :mod:`~repro.service.worker` — the process-pool entry point; each
  worker keeps a warm :class:`repro.SessionPool` so repeat sources
  reuse parsed IR and analysis fixpoints.
- :mod:`~repro.service.daemon` — the asyncio server: concurrent
  connections, in-flight request coalescing, per-request timeouts,
  worker-crash requeue, graceful drain, per-run trace directories.
- :mod:`~repro.service.client` — a blocking one-connection client.
- :mod:`~repro.service.loadgen` — the latency/throughput load
  generator and its PERF_HISTORY ledger bridge.

CLI: ``repro serve`` / ``repro loadgen``.  Protocol, failure semantics,
and SLO methodology: docs/SERVICE.md.
"""

from .client import ServiceClient, ServiceError
from .faults import FAULT_PLAN_ENV, FaultPlan, InjectedFault
from .daemon import (
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_SLO_ERROR_RATE,
    DEFAULT_SLO_P99,
    DEFAULT_SOCKET_PATH,
    ReproService,
    ServiceThread,
    WorkerCrashed,
    make_run_dir,
    serve,
)
from .loadgen import (
    LatencySummary,
    LoadgenReport,
    default_corpus,
    percentile,
    percentile_crosscheck,
    report_entry,
    run_loadgen,
    write_report_json,
)
from .protocol import (
    OPS,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
)
from .store import ArtifactKey, ArtifactStore
from .worker import config_from_dict, service_work

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_SLO_ERROR_RATE",
    "DEFAULT_SLO_P99",
    "DEFAULT_SOCKET_PATH",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "InjectedFault",
    "LatencySummary",
    "LoadgenReport",
    "OPS",
    "ProtocolError",
    "ReproService",
    "Request",
    "Response",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "WorkerCrashed",
    "config_from_dict",
    "decode_request",
    "decode_response",
    "default_corpus",
    "make_run_dir",
    "percentile",
    "percentile_crosscheck",
    "report_entry",
    "run_loadgen",
    "serve",
    "service_work",
    "write_report_json",
]
