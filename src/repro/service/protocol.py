"""The service wire protocol: newline-delimited JSON over a local socket.

One request per line, one response per line, always in order per
connection (a client may pipeline: responses carry the request ``id``).
The schema is additive — unknown request fields are ignored, so clients
and daemons can skew by a version (same contract as the trace format).

Request::

    {"id": 1, "op": "optimize", "source": "def main() { ... }",
     "config": {"inline": true, ...},       # CompileConfig.to_dict()
     "build": "inline",                     # run op: which build to execute
     "tenant": "ci",                        # session-pool lane (optional)
     "timeout": 5.0}                        # per-request seconds (optional)

Response::

    {"id": 1, "ok": true, "result": {...},
     "cached": true,          # answered from the artifact store
     "coalesced": false,      # joined an identical in-flight request
     "elapsed_ms": 0.41}
    {"id": 2, "ok": false, "error": "timeout after 5.0s"}

Ops: ``ping`` (liveness), ``compile`` (parse+lower, answered in-process),
``analyze`` / ``optimize`` / ``run`` (CPU-bound; dispatched to the worker
pool through the artifact store), ``stats`` (store/pool/daemon counters),
``metrics`` (read-only canonical snapshot of the live metrics registry,
see :mod:`repro.obs.metrics`), ``shutdown`` (graceful drain).  ``crash``
kills the worker mid-request and exists only for robustness tests (the
daemon rejects it unless started with ``allow_test_ops``).

Requests may carry a ``traceparent`` field (W3C shape,
``00-{trace_id}-{parent_span_id}-01``): the daemon binds its spans for
that request under the client-minted ids so the merged trace stitches
into one tree per request.  Malformed values are ignored, never fatal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Ops the daemon understands.  ``crash`` is test-only.
OPS = (
    "ping", "compile", "analyze", "optimize", "run",
    "stats", "metrics", "shutdown", "crash",
)

#: Ops that carry source text and are answered through the worker pool
#: and the artifact store.
WORK_OPS = ("analyze", "optimize", "run", "crash")

#: A line longer than this is a protocol error, not a buffering attempt.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request or response line."""


@dataclass(slots=True)
class Request:
    """One decoded client request."""

    op: str
    id: int | str | None = None
    source: str | None = None
    path: str | None = None
    config: dict | None = None  # CompileConfig.to_dict() shape
    build: str = "inline"
    tenant: str = "default"
    timeout: float | None = None
    #: Run-op resource budgets (steps / heap cells); ``None`` = unlimited.
    #: Budgets change the answer (result vs. clean ResourceLimitError
    #: reply), so the daemon folds them into the artifact address.
    max_steps: int | None = None
    max_heap_cells: int | None = None
    #: W3C-shaped trace context (``00-{trace_id}-{span_id}-01``) minted
    #: by the client; additive, so old daemons simply ignore it.
    traceparent: str | None = None

    def encode(self) -> bytes:
        payload: dict = {"op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        for name in (
            "source", "path", "config", "timeout",
            "max_steps", "max_heap_cells", "traceparent",
        ):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.build != "inline":
            payload["build"] = self.build
        if self.tenant != "default":
            payload["tenant"] = self.tenant
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        ) + b"\n"


@dataclass(slots=True)
class Response:
    """One decoded daemon response."""

    id: int | str | None = None
    ok: bool = True
    result: object = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    elapsed_ms: float | None = None
    #: Pre-encoded canonical ``result`` JSON (no whitespace, sorted keys).
    #: When set, :meth:`encode` splices these bytes verbatim instead of
    #: re-serializing ``result`` — the warm path serves the byte string
    #: the artifact store remembered from the cold compile.
    result_bytes: bytes | None = None

    def encode(self) -> bytes:
        if self.ok:
            payload: dict = {"id": self.id, "ok": True}
            if self.result_bytes is None:
                payload["result"] = self.result
            if self.cached:
                payload["cached"] = True
            if self.coalesced:
                payload["coalesced"] = True
        else:
            payload = {"id": self.id, "ok": False, "error": self.error or "error"}
        if self.elapsed_ms is not None:
            payload["elapsed_ms"] = round(self.elapsed_ms, 3)
        # sort_keys: one canonical byte encoding, so the differential
        # tests can compare warm and cold replies bit-for-bit.
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        if self.ok and self.result_bytes is not None:
            # "result" sorts after every other ok-path key ("cached",
            # "coalesced", "elapsed_ms", "id", "ok"), so splicing it last
            # reproduces json.dumps(sort_keys=True) byte-for-byte.
            encoded = encoded[:-1] + b',"result":' + self.result_bytes + b"}"
        return encoded + b"\n"


def _decode_line(line: bytes | str, what: str) -> dict:
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"{what} line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError(f"empty {what} line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"{what} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def decode_request(line: bytes | str) -> Request:
    """Parse one request line (raises :class:`ProtocolError`)."""
    payload = _decode_line(line, "request")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    if op in WORK_OPS or op == "compile":
        if not isinstance(payload.get("source"), str):
            raise ProtocolError(f"op {op!r} requires a string `source`")
    config = payload.get("config")
    if config is not None and not isinstance(config, dict):
        raise ProtocolError("`config` must be an object (CompileConfig.to_dict())")
    timeout = payload.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
            raise ProtocolError("`timeout` must be a positive number of seconds")
        timeout = float(timeout)
    budgets = {}
    for name in ("max_steps", "max_heap_cells"):
        value = payload.get(name)
        if value is not None:
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ProtocolError(f"`{name}` must be a positive integer")
        budgets[name] = value
    return Request(
        op=op,
        id=payload.get("id"),
        source=payload.get("source"),
        path=payload.get("path") if isinstance(payload.get("path"), str) else None,
        config=config,
        build=payload.get("build") if isinstance(payload.get("build"), str) else "inline",
        tenant=payload.get("tenant") if isinstance(payload.get("tenant"), str) else "default",
        timeout=timeout,
        max_steps=budgets["max_steps"],
        max_heap_cells=budgets["max_heap_cells"],
        traceparent=(
            payload.get("traceparent")
            if isinstance(payload.get("traceparent"), str)
            else None
        ),
    )


def decode_response(line: bytes | str) -> Response:
    """Parse one response line (raises :class:`ProtocolError`)."""
    payload = _decode_line(line, "response")
    if "ok" not in payload:
        raise ProtocolError("response is missing `ok`")
    return Response(
        id=payload.get("id"),
        ok=bool(payload.get("ok")),
        result=payload.get("result"),
        error=payload.get("error"),
        cached=bool(payload.get("cached", False)),
        coalesced=bool(payload.get("coalesced", False)),
        elapsed_ms=payload.get("elapsed_ms"),
    )
