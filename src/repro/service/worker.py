"""The CPU-bound half of the compile service.

:func:`service_work` is the process-pool entry point: it receives one
picklable task dict, drives a :class:`repro.Session` through the
requested phase, and ships back a :class:`WorkProduct` — the
JSON-serializable reply payload, the pickled artifact blob for the
daemon's content-addressed store, and the worker's trace shard.

Two amortization layers stack here:

- The **daemon's artifact store** answers exact ``(op, source, config)``
  repeats without ever reaching a worker.
- Each worker keeps a module-level warm :class:`repro.SessionPool`, so
  near-repeats that *do* reach a worker (same source, different config;
  or an ``analyze`` after an ``optimize``) reuse the parsed IR and the
  analysis fixpoint — the long-lived-optimizer amortization the adaptive
  JIT literature assumes, here per worker process.

Determinism contract: compiles and the simulated VM are deterministic,
so the reply payload of a given ``(op, source, config, build)`` is a
pure function of its key — which is why the daemon may cache replies
and why a warm hit is bit-identical to the cold compile.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from dataclasses import dataclass

from ..analysis import AnalysisConfig
from ..obs import MemorySink, MetricsRegistry, Tracer, TraceShard, mint_span_id
from ..session import CompileConfig, SessionPool
from .faults import FaultPlan, InjectedFault, corrupt_bytes, draw


def config_from_dict(payload: dict | None) -> CompileConfig:
    """Rebuild a :class:`CompileConfig` from its ``to_dict()`` form.

    Unknown keys are ignored (additive protocol schema); a malformed
    analysis sub-object raises ``TypeError``/``ValueError`` for the
    daemon to turn into an error reply.
    """
    if not payload:
        return CompileConfig()
    fields = {
        name: payload[name]
        for name in (
            "inline",
            "devirtualize",
            "manual_only",
            "inline_methods_pass",
            "escape_pass",
            "cache_loads_pass",
            "dce_pass",
            "max_rounds",
        )
        if name in payload
    }
    analysis = payload.get("analysis")
    if analysis is not None:
        known = {f.name for f in AnalysisConfig.__dataclass_fields__.values()}
        fields["analysis"] = AnalysisConfig(
            **{k: v for k, v in analysis.items() if k in known}
        )
    return CompileConfig(**fields)


@dataclass(slots=True)
class WorkProduct:
    """What one worker ships back for one request."""

    reply: dict
    #: Pickled artifact blob for the store (``None`` for uncacheable ops).
    artifact: bytes | None
    trace: TraceShard
    elapsed_s: float
    #: Set when a fault plan damaged this product ("corrupt"); the
    #: daemon must then not trust the artifact's fast paths.
    injected: str | None = None
    #: Metrics-registry snapshot (:meth:`MetricsRegistry.to_dict`) —
    #: worker-side deltas (per-op latency, pipeline stage timings,
    #: self-reportable fault kinds) the daemon folds into its registry.
    metrics: dict | None = None


#: Per-worker-process warm sessions (compiled IR + analysis fixpoints).
_SESSIONS: SessionPool | None = None

#: Per-process fault-draw counter (reproducible chaos given one worker).
_FAULT_COUNTER = 0


def _sessions() -> SessionPool:
    global _SESSIONS
    if _SESSIONS is None:
        _SESSIONS = SessionPool(max_sessions=16)
    return _SESSIONS


def analysis_summary(report) -> dict:
    """The analysis digest stored with every artifact."""
    manager = report.analysis.manager
    return {
        "method_contours": report.analysis.method_contour_count(),
        "object_contours": report.analysis.object_contour_count(),
        "widened_callables": len(manager.widened_callables),
        "widened_sites": len(manager.widened_sites),
        "accepted": [c.describe() for c in report.plan.accepted()],
        "rejected": len(report.plan.rejected()),
        "replan_rounds": report.replan_rounds,
        "nested_rounds": report.nested_rounds,
    }


def service_work(task: dict) -> WorkProduct:
    """Process-pool entry: one ``analyze``/``optimize``/``run`` request.

    ``task`` keys: ``op``, ``source``, ``path``, ``config`` (dict form),
    ``build`` (run op), ``tenant``, ``allow_test_ops``.
    """
    op = task["op"]
    if op == "crash":
        # Robustness-test op (gated daemon-side): die like a segfaulting
        # worker would — no exception, no cleanup, just a dead process.
        os._exit(1)
    # Chaos mode: the daemon threads its FaultPlan through the task dict
    # (never the environment), so direct in-process calls — the loadgen
    # verify oracle, tests — are never fault-injected.
    fault = "none"
    rng: random.Random | None = None
    plan = FaultPlan.from_dict(task.get("faults"))
    if plan.active:
        global _FAULT_COUNTER
        _FAULT_COUNTER += 1
        # Deterministic per (plan seed, worker pid, request ordinal) so a
        # single-worker chaos run replays identically.
        rng = random.Random(
            plan.seed * 1_000_003 + os.getpid() * 7_919 + _FAULT_COUNTER
        )
        fault = draw(plan, rng)
        if fault == "crash":
            os._exit(1)
        if fault == "hang":
            time.sleep(plan.hang_seconds)
        elif fault == "error":
            raise InjectedFault(f"injected worker fault (op {op!r})")
    started = time.perf_counter()
    tracer = Tracer(MemorySink())
    metrics = MetricsRegistry()
    # Hang and corrupt are the only fault kinds a worker can self-report:
    # crash never returns and error raises before any product exists —
    # the daemon attributes those two (see ReproService).
    if fault in ("hang", "corrupt"):
        metrics.counter(
            "service_faults_total", "Injected chaos faults", labels=("kind",)
        ).labels(kind=fault).inc()
    config = config_from_dict(task.get("config"))
    session = _sessions().session(
        task["source"], tenant=task.get("tenant", "default"), path=task.get("path")
    )
    artifact: bytes | None = None
    # The propagated trace context: the daemon's dispatch span is this
    # span's causal parent; the hex ids in the meta survive the trace
    # merge (local integer ids do not) and drive export-time stitching.
    trace_ctx = task.get("trace") or {}
    span_meta: dict = {"op": op, "pid": os.getpid()}
    if trace_ctx.get("trace_id"):
        span_meta["trace_id"] = trace_ctx["trace_id"]
        span_meta["span_id"] = mint_span_id()
        if trace_ctx.get("parent_span"):
            span_meta["parent_span"] = trace_ctx["parent_span"]
    with tracer.span("service.work", **span_meta):
        if op == "analyze":
            report = session.optimize(config, tracer=tracer, metrics=metrics)
            reply = {"op": op, **analysis_summary(report)}
            artifact = pickle.dumps(
                {"program": report.program, "summary": analysis_summary(report), "reply": reply}
            )
        elif op == "optimize":
            report = session.optimize(config, tracer=tracer, metrics=metrics)
            summary = analysis_summary(report)
            stats = report.clone_stats
            reply = {
                "op": op,
                "accepted": summary["accepted"],
                "rejected": summary["rejected"],
                "method_partitions": stats.method_partitions,
                "class_variants": stats.class_variants,
                "view_classes": stats.view_classes,
                "replan_rounds": report.replan_rounds,
                "analysis": {
                    k: summary[k]
                    for k in ("method_contours", "object_contours", "widened_callables")
                },
            }
            artifact = pickle.dumps(
                {"program": report.program, "summary": summary, "reply": reply}
            )
        elif op == "run":
            build = task.get("build", "inline")
            if build == "plain":
                program = session.compile()
            else:
                program = session.optimize(
                    _build_config(build, config), tracer=tracer, metrics=metrics
                ).program
            result = session_run(
                session,
                program,
                tracer,
                max_steps=task.get("max_steps"),
                max_heap_cells=task.get("max_heap_cells"),
            )
            reply = {
                "op": op,
                "build": build,
                "output": list(result.output),
                "cycles": result.stats.cycles(),
            }
            artifact = pickle.dumps({"program": program, "summary": None, "reply": reply})
        else:
            raise ValueError(f"unsupported worker op {op!r}")
    injected: str | None = None
    if fault == "corrupt" and artifact is not None and rng is not None:
        # The *reply* stays correct — only the stored blob is damaged, so
        # the recovery under test is the store's corrupt-pickle-as-miss
        # path on the next warm lookup, never a wrong client answer.
        artifact = corrupt_bytes(artifact, rng)
        injected = "corrupt"
    elapsed = time.perf_counter() - started
    metrics.histogram(
        "service_worker_op_seconds", "Worker wall time per op", labels=("op",)
    ).labels(op=op).observe(elapsed)
    return WorkProduct(
        reply=reply,
        artifact=artifact,
        trace=tracer.shard(),
        elapsed_s=elapsed,
        injected=injected,
        metrics=metrics.to_dict(),
    )


def _build_config(build: str, config: CompileConfig) -> CompileConfig:
    """The run op's build facet applied to the request config."""
    import dataclasses

    base = {
        "noinline": {"inline": False},
        "inline": {"inline": True},
        "noescape": {"inline": True, "escape_pass": False},
        "manual": {"manual_only": True},
        "opt": {"inline": True, "max_rounds": 3},
    }.get(build)
    if base is None:
        raise ValueError(f"unknown build {build!r}")
    return dataclasses.replace(config, **base)


def session_run(session, program, tracer, max_steps=None, max_heap_cells=None):
    """Execute ``program`` on the VM under the worker tracer.

    Budgets make execution hang-proof: a runaway program raises
    :class:`repro.runtime.ResourceLimitError`, which the daemon maps to
    a clean error reply instead of a worker timeout kill.
    """
    from ..runtime import run_program as _run_program

    kwargs: dict = {}
    if max_steps is not None:
        kwargs["max_steps"] = int(max_steps)
    if max_heap_cells is not None:
        kwargs["max_heap_cells"] = int(max_heap_cells)
    return _run_program(program, tracer=tracer, **kwargs)
