"""The load generator (``repro loadgen``): latency SLOs made measurable.

Replays the benchmark corpus against a live daemon at a configurable
concurrency, then reports what a service owner actually watches:
**throughput**, **p50/p95/p99 latency**, the **cold vs warm split**
(cold = a real compile reached a worker; warm = answered from the
content-addressed artifact store), and the daemon's own cache counters.
Every run can be appended to the PERF_HISTORY ledger — the same
append-only record `repro bench` writes — so latency percentiles get
trend lines and `repro perf diff` comparisons like any other metric.

The measurement model is deliberately simple and honest: ``concurrency``
worker threads each hold one persistent connection and pull request
indices off a shared queue (round-robin over the corpus), so the daemon
sees a steady closed-loop load of N outstanding requests.  Latency is
wall clock around one request/reply cycle, measured client-side —
protocol, queueing, cache, and compute included.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field

from ..obs.history import environment, make_entry
from ..obs.metrics import (
    _histogram_series,
    bucket_index,
    digest as metrics_digest,
    quantile_from_buckets,
)
from ..session import CompileConfig
from .client import ServiceClient, ServiceError

#: Ledger suite name; its config hash never pools with `repro bench` runs.
LOADGEN_SUITE = "service-loadgen"


def default_corpus() -> dict[str, str]:
    """The Figure-17 benchmark corpus (name -> source)."""
    from ..bench.harness import PERFORMANCE_PROGRAMS

    return dict(PERFORMANCE_PROGRAMS)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample list.

    The nearest-rank definition is ``ceil(q * n)`` (1-based).  Note that
    ``round(q * n + 0.5)`` is *not* an implementation of it: Python
    rounds half to even, so e.g. ``n=2, q=0.5`` gave ``round(1.5) = 2``
    — reporting the *larger* sample as the median.
    """
    if not samples:
        raise ValueError("percentile of empty sample list")
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass(slots=True)
class LatencySummary:
    """Percentiles of one latency population, in seconds."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary | None":
        if not samples:
            return None
        return cls(
            count=len(samples),
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
            p99=percentile(samples, 0.99),
            mean=sum(samples) / len(samples),
            max=max(samples),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.p50 * 1e3, 3),
            "p95_ms": round(self.p95 * 1e3, 3),
            "p99_ms": round(self.p99 * 1e3, 3),
            "mean_ms": round(self.mean * 1e3, 3),
            "max_ms": round(self.max * 1e3, 3),
        }

    def row(self, label: str) -> str:
        return (
            f"{label:12s} p50 {self.p50 * 1e3:9.2f}ms   p95 {self.p95 * 1e3:9.2f}ms   "
            f"p99 {self.p99 * 1e3:9.2f}ms   max {self.max * 1e3:9.2f}ms   (n={self.count})"
        )


@dataclass(slots=True)
class _Sample:
    """One request's client-side measurement."""

    benchmark: str
    seconds: float
    ok: bool
    cached: bool
    coalesced: bool
    error: str | None = None
    #: Verify mode: an ok reply whose result differed from the oracle.
    incorrect: bool = False


@dataclass(slots=True)
class LoadgenReport:
    """Everything one loadgen run measured."""

    socket_path: str
    op: str
    build: str
    requests: int
    concurrency: int
    corpus: list[str]
    duration_s: float
    errors: int
    error_samples: list[str]
    latency: LatencySummary | None
    cold: LatencySummary | None
    warm: LatencySummary | None
    cached_replies: int
    coalesced_replies: int
    server: dict = field(default_factory=dict)
    #: Verify mode: ok replies compared against an in-process oracle.
    verified: bool = False
    incorrect: int = 0
    incorrect_samples: list[str] = field(default_factory=list)
    #: Daemon-side percentiles derived from its `service_request_seconds`
    #: histogram (``{"p50_s": ..., "p95_s": ..., "p99_s": ..., "count": ...}``).
    daemon_latency: dict | None = None
    #: The client-vs-daemon percentile agreement verdict (see
    #: :func:`percentile_crosscheck`); ``None`` if the scrape failed.
    percentile_check: dict | None = None
    #: The daemon's full metrics-registry snapshot, scraped right after
    #: the run (before a self-hosted daemon is torn down) — chaos triage
    #: renders its digest when verify fails.  ``to_dict`` carries only
    #: the digest; the raw snapshot stays in-process.
    metrics_snapshot: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def warm_speedup(self) -> float | None:
        """Cold p50 / warm p50 — the artifact cache's headline number."""
        if self.cold is None or self.warm is None or self.warm.p50 <= 0:
            return None
        return self.cold.p50 / self.warm.p50

    def to_dict(self) -> dict:
        speedup = self.warm_speedup()
        return {
            "socket": self.socket_path,
            "op": self.op,
            "build": self.build,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "corpus": self.corpus,
            "duration_s": round(self.duration_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "errors": self.errors,
            "error_samples": self.error_samples[:5],
            "latency": self.latency.to_dict() if self.latency else None,
            "cold": self.cold.to_dict() if self.cold else None,
            "warm": self.warm.to_dict() if self.warm else None,
            "cached_replies": self.cached_replies,
            "coalesced_replies": self.coalesced_replies,
            "warm_speedup_p50": round(speedup, 2) if speedup is not None else None,
            "server": self.server,
            "verified": self.verified,
            "incorrect": self.incorrect,
            "incorrect_samples": self.incorrect_samples[:5],
            "daemon_latency": self.daemon_latency,
            "percentile_check": self.percentile_check,
            "daemon_digest": (
                metrics_digest(self.metrics_snapshot).to_dict()
                if self.metrics_snapshot
                else None
            ),
        }

    def render(self) -> str:
        lines = [
            f"loadgen: {self.requests} requests x concurrency {self.concurrency} "
            f"-> {self.socket_path} (op={self.op}, build={self.build})",
            f"corpus: {', '.join(self.corpus)}",
            f"errors: {self.errors}    duration: {self.duration_s:.2f}s    "
            f"throughput: {self.throughput_rps:.1f} req/s",
        ]
        if self.latency:
            lines.append(self.latency.row("latency"))
        if self.cold:
            lines.append(self.cold.row("cold"))
        if self.warm:
            lines.append(self.warm.row("warm"))
        lines.append(
            f"cache: {self.cached_replies} warm replies "
            f"({self.cached_replies / max(1, self.requests):.1%}), "
            f"{self.coalesced_replies} coalesced"
        )
        speedup = self.warm_speedup()
        if speedup is not None:
            lines.append(f"warm p50 speedup over cold p50: {speedup:.1f}x")
        if self.daemon_latency:
            d = self.daemon_latency
            lines.append(
                f"daemon       p50 {d['p50_s'] * 1e3:9.2f}ms   "
                f"p95 {d['p95_s'] * 1e3:9.2f}ms   "
                f"p99 {d['p99_s'] * 1e3:9.2f}ms   "
                f"(histogram, n={d['count']})"
            )
        if self.percentile_check is not None:
            verdict = "agree" if self.percentile_check.get("ok") else "DISAGREE"
            detail = "  ".join(
                f"{q} Δ{abs(item['client_bucket'] - item['daemon_bucket'])}"
                for q, item in sorted(self.percentile_check.get("quantiles", {}).items())
            )
            lines.append(
                f"percentiles: client vs daemon histograms {verdict} "
                f"(within one bucket)  [{detail}]"
            )
        if self.verified:
            lines.append(
                f"verify: {self.incorrect} incorrect ok-replies "
                f"(every ok reply checked against the in-process oracle)"
            )
            for sample in self.incorrect_samples[:5]:
                lines.append(f"  INCORRECT: {sample}")
        store = self.server.get("store") if isinstance(self.server, dict) else None
        if store:
            lines.append(
                f"server store: {store.get('entries')} entries, "
                f"{store.get('hits')} hits / {store.get('misses')} misses "
                f"(hit rate {store.get('hit_rate', 0.0):.1%}), "
                f"{store.get('evictions')} evictions"
            )
        if self.errors:
            for sample in self.error_samples[:5]:
                lines.append(f"  error: {sample}")
        return "\n".join(lines)


def percentile_crosscheck(
    client: "LatencySummary", snapshot: dict, op: str | None = None
) -> tuple[dict | None, dict | None]:
    """Compare client-measured percentiles with the daemon's histogram.

    The client computes nearest-rank percentiles over exact samples; the
    daemon can only answer with the **upper boundary** of the bucket the
    target rank landed in.  The strongest check both sides can honor is
    therefore bucket-level agreement: map each client percentile into the
    daemon's bucket layout (:func:`bucket_index`) and demand it lands
    within one bucket of the daemon's answer.  A drift of two or more
    buckets means the two measurement paths disagree about the latency
    distribution itself — a lost-sample or mislabeled-series bug, not
    noise.

    Returns ``(daemon_latency, percentile_check)``; both ``None`` when
    the snapshot has no ok-request histogram to compare against.
    """
    # Restrict to the loadgen's own op when given: the daemon's histogram
    # also counts stats/metrics scrapes, which would skew the comparison
    # population against the client's samples.
    match = {"code": "ok"} if op is None else {"code": "ok", "op": op}
    merged = _histogram_series(snapshot, "service_request_seconds", match)
    if merged is None and op is not None:
        merged = _histogram_series(snapshot, "service_request_seconds", {"code": "ok"})
    if merged is None:
        return None, None
    boundaries, counts, _total_sum, total_count = merged
    daemon = {
        "p50_s": quantile_from_buckets(boundaries, counts, 0.50),
        "p95_s": quantile_from_buckets(boundaries, counts, 0.95),
        "p99_s": quantile_from_buckets(boundaries, counts, 0.99),
        "count": total_count,
    }
    quantiles: dict[str, dict] = {}
    all_ok = True
    for label, client_value in (
        ("p50", client.p50),
        ("p95", client.p95),
        ("p99", client.p99),
    ):
        daemon_value = daemon[f"{label}_s"]
        client_bucket = bucket_index(boundaries, client_value)
        daemon_bucket = bucket_index(boundaries, daemon_value)
        ok = abs(client_bucket - daemon_bucket) <= 1
        all_ok = all_ok and ok
        quantiles[label] = {
            "client_s": round(client_value, 6),
            "daemon_s": daemon_value,
            "client_bucket": client_bucket,
            "daemon_bucket": daemon_bucket,
            "ok": ok,
        }
    return daemon, {"ok": all_ok, "quantiles": quantiles}


def run_loadgen(
    socket_path: str,
    requests: int = 500,
    concurrency: int = 8,
    op: str = "optimize",
    build: str = "inline",
    corpus: dict[str, str] | None = None,
    config: CompileConfig | None = None,
    timeout: float | None = None,
    tenant: str = "loadgen",
    verify: bool = False,
) -> LoadgenReport:
    """Replay ``corpus`` against the daemon; returns the measured report.

    Requests are assigned round-robin over the corpus, so with R
    requests and a C-program corpus each program is compiled cold once
    and then served warm ~R/C - 1 times — which is what makes the
    cold/warm latency split meaningful.

    ``verify=True`` (chaos mode's correctness net) first computes every
    corpus reply **in-process** via the same worker entry point the
    daemon dispatches to — with no fault plan, since faults are threaded
    through the daemon's task dicts and never ambient state — then
    checks every ok reply from the daemon bit-for-bit against that
    oracle.  Error replies (injected faults, timeouts) are visible
    failures and therefore acceptable under chaos; an *ok* reply with
    wrong content is the one unforgivable outcome, counted in
    ``report.incorrect``.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    corpus = corpus if corpus is not None else default_corpus()
    if not corpus:
        raise ValueError("loadgen corpus is empty")
    names = list(corpus)
    config_dict = (config or CompileConfig()).to_dict()
    expected: dict[str, object] = {}
    if verify:
        from .worker import service_work

        for name in names:
            product = service_work(
                {
                    "op": op,
                    "source": corpus[name],
                    "path": f"{name}.icc",
                    "config": config_dict,
                    "build": build,
                    "tenant": tenant,
                }
            )
            # The daemon's replies cross a JSON wire; canonicalize the
            # oracle's dict the same way so the comparison is fair.
            expected[name] = json.loads(json.dumps(product.reply, sort_keys=True))
    work: list[int] = list(range(requests))
    cursor = {"next": 0}
    lock = threading.Lock()
    samples: list[_Sample] = []
    start_gate = threading.Event()

    def _worker() -> None:
        try:
            client = ServiceClient(socket_path, tenant=tenant, connect_retries=5)
        except OSError as error:
            with lock:
                samples.append(
                    _Sample("<connect>", 0.0, False, False, False, str(error))
                )
            return
        start_gate.wait()
        try:
            while True:
                with lock:
                    if cursor["next"] >= len(work):
                        return
                    index = cursor["next"]
                    cursor["next"] += 1
                name = names[index % len(names)]
                started = time.perf_counter()
                try:
                    response = client.request(
                        op,
                        source=corpus[name],
                        path=f"{name}.icc",
                        config=config_dict,
                        build=build,
                        timeout=timeout,
                    )
                    sample = _Sample(
                        benchmark=name,
                        seconds=time.perf_counter() - started,
                        ok=response.ok,
                        cached=response.cached,
                        coalesced=response.coalesced,
                        error=None if response.ok else response.error,
                    )
                    if verify and response.ok and response.result != expected[name]:
                        sample.incorrect = True
                except (ServiceError, OSError) as error:
                    sample = _Sample(
                        name, time.perf_counter() - started, False, False, False, str(error)
                    )
                with lock:
                    samples.append(sample)
        finally:
            client.close()

    threads = [
        threading.Thread(target=_worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    server_stats: dict = {}
    metrics_snapshot: dict = {}
    try:
        with ServiceClient(socket_path, tenant=tenant) as client:
            server_stats = client.stats()
            metrics_snapshot = client.metrics()
    except (ServiceError, OSError):
        pass

    ok = [s for s in samples if s.ok]
    failed = [s for s in samples if not s.ok]
    cold = [s.seconds for s in ok if not s.cached and not s.coalesced]
    warm = [s.seconds for s in ok if s.cached]
    incorrect = [s for s in ok if s.incorrect]
    latency = LatencySummary.from_samples([s.seconds for s in ok])
    daemon_latency: dict | None = None
    percentile_check: dict | None = None
    if latency is not None and metrics_snapshot:
        daemon_latency, percentile_check = percentile_crosscheck(
            latency, metrics_snapshot, op=op
        )
    return LoadgenReport(
        socket_path=socket_path,
        op=op,
        build=build,
        requests=requests,
        concurrency=concurrency,
        corpus=names,
        duration_s=duration,
        errors=len(failed),
        error_samples=[f"{s.benchmark}: {s.error}" for s in failed],
        latency=latency,
        cold=LatencySummary.from_samples(cold),
        warm=LatencySummary.from_samples(warm),
        cached_replies=sum(1 for s in ok if s.cached),
        coalesced_replies=sum(1 for s in ok if s.coalesced),
        server=server_stats,
        verified=verify,
        incorrect=len(incorrect),
        incorrect_samples=[s.benchmark for s in incorrect],
        daemon_latency=daemon_latency,
        percentile_check=percentile_check,
        metrics_snapshot=metrics_snapshot,
    )


# ----------------------------------------------------------------------
# The perf-history ledger bridge.


def report_entry(report: LoadgenReport, note: str | None = None) -> dict:
    """One PERF_HISTORY ledger entry for a loadgen run.

    The measurement config (suite, op, build, request count, concurrency,
    corpus) is content-hashed exactly like a bench entry, so loadgen
    runs pool only with loadgen runs of the same shape; ``concurrency``
    doubles as the entry's ``jobs`` environment field.  Latency
    percentiles land as (seconds-valued) phase samples, which gives them
    `repro perf trend latency_p50` sparklines for free.
    """
    phases: dict[str, list[float]] = {}
    if report.latency:
        phases["latency_p50"] = [report.latency.p50]
        phases["latency_p95"] = [report.latency.p95]
        phases["latency_p99"] = [report.latency.p99]
    if report.cold:
        phases["latency_cold_p50"] = [report.cold.p50]
    if report.warm:
        phases["latency_warm_p50"] = [report.warm.p50]
    if report.daemon_latency:
        # The daemon's histogram-derived percentiles ride along with the
        # client-side ones, so `repro perf trend` can surface a drift
        # between the two measurement paths as readily as a regression.
        phases["latency_daemon_p50"] = [report.daemon_latency["p50_s"]]
        phases["latency_daemon_p95"] = [report.daemon_latency["p95_s"]]
        phases["latency_daemon_p99"] = [report.daemon_latency["p99_s"]]
    benchmarks = {
        "service": {
            report.op: {
                "cycles": [],
                "phases": phases,
                "optimize_seconds": [],
                "run_seconds": [],
                "throughput_rps": round(report.throughput_rps, 2),
                "errors": report.errors,
                "requests": report.requests,
                "cached_replies": report.cached_replies,
            }
        }
    }
    config = {
        "suite": LOADGEN_SUITE,
        "op": report.op,
        "build": report.build,
        "requests": report.requests,
        "concurrency": report.concurrency,
        "corpus": sorted(report.corpus),
    }
    return make_entry(
        benchmarks,
        config,
        environment(jobs=report.concurrency),
        repeat=1,
        note=note,
    )


def write_report_json(path: str, report: LoadgenReport) -> str:
    """Dump the full report as JSON (the CI artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
