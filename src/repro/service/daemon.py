"""The asyncio compile daemon (``repro serve``).

One long-lived process turns the compile pipeline into a service:

- **Front end** — an asyncio unix-socket server speaking the
  newline-delimited JSON protocol (:mod:`repro.service.protocol`).
  Connections are cheap and persistent; requests on one connection are
  answered in order, and many connections are served concurrently.
- **Artifact cache** — every ``analyze``/``optimize``/``run`` answer is
  addressed by ``(op, source hash, config hash)`` in a content-addressed
  :class:`~repro.service.store.ArtifactStore`; exact repeats are
  answered from the store without touching a worker.  Identical
  **in-flight** requests are coalesced: N concurrent compiles of the
  same program dispatch one worker task and share its reply.
- **Worker pool** — CPU-bound work runs in a
  :class:`~concurrent.futures.ProcessPoolExecutor` via
  :func:`repro.service.worker.service_work`.  A crashed worker breaks
  the pool; the daemon rebuilds it and **requeues the request once** —
  a second failure becomes an error reply, never daemon death, and
  innocent requests caught in the same pool break are requeued too.
- **Robustness** — per-request timeouts (client-supplied or the
  daemon default) bound every reply; timed-out work keeps running and
  still lands in the store, so a retry usually hits cache.  Graceful
  shutdown (the ``shutdown`` op, or SIGINT/SIGTERM under the CLI) stops
  accepting work, drains in-flight requests, and only then exits.
- **Tracing** — with ``trace_dir`` set, each daemon run creates its own
  ``run-<stamp>-<pid>/`` directory and streams ``service.jsonl`` there:
  request/cache events plus every worker's span shard merged in as its
  own lane, so ``repro export chrome`` renders a multi-lane service
  trace with no manual merging.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket as socket_module
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..analysis import AnalysisConfig
from ..obs import NULL_TRACER, tracer_to_file
from ..session import SessionPool
from .faults import FaultPlan
from .protocol import ProtocolError, Request, Response, decode_request
from .store import ArtifactKey, ArtifactStore
from .worker import config_from_dict, service_work

#: Default local socket (override with ``--socket``).
DEFAULT_SOCKET_PATH = "/tmp/repro-service.sock"

#: Default per-request timeout (seconds); clients may lower it per call.
DEFAULT_REQUEST_TIMEOUT = 120.0

#: How long a graceful shutdown waits for in-flight requests.
DEFAULT_DRAIN_TIMEOUT = 30.0


class WorkerCrashed(RuntimeError):
    """A request's worker died twice (original + one requeue)."""


def make_run_dir(base: str) -> str:
    """A fresh ``run-<stamp>-<pid>[.N]/`` directory under ``base``.

    Every daemon run owns one directory for its trace shards, so
    concurrent or successive daemons never clobber each other's traces.
    """
    os.makedirs(base, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    candidate = os.path.join(base, f"run-{stamp}-{os.getpid()}")
    suffix = 0
    path = candidate
    while True:
        try:
            os.mkdir(path)
            return path
        except FileExistsError:
            suffix += 1
            path = f"{candidate}.{suffix}"


@dataclass(slots=True)
class ServiceStats:
    """Daemon-side request counters (the ``stats`` op, plus tests)."""

    requests: int = 0
    errors: int = 0
    timeouts: int = 0
    coalesced: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    injected_corrupt: int = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "coalesced": self.coalesced,
            "crashes": self.crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "injected_corrupt": self.injected_corrupt,
        }


class ReproService:
    """The compile-as-a-service daemon (see the module docstring)."""

    def __init__(
        self,
        socket_path: str = DEFAULT_SOCKET_PATH,
        *,
        workers: int = 2,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        store_entries: int = 256,
        store_bytes: int | None = None,
        trace_dir: str | None = None,
        analysis: AnalysisConfig | None = None,
        allow_test_ops: bool = False,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.socket_path = socket_path
        self.workers = max(1, workers)
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.allow_test_ops = allow_test_ops
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.run_dir: str | None = None
        if trace_dir is not None:
            self.run_dir = make_run_dir(trace_dir)
            self.tracer = tracer_to_file(os.path.join(self.run_dir, "service.jsonl"))
        else:
            self.tracer = NULL_TRACER
        self.store = ArtifactStore(
            max_entries=store_entries, max_bytes=store_bytes, tracer=self.tracer
        )
        #: In-process sessions: the ``compile`` op and per-tenant lanes.
        self.sessions = SessionPool(config=analysis, tracer=self.tracer)
        self.stats = ServiceStats()
        self._analysis = analysis
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[ArtifactKey, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._idle: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._started_at = time.monotonic()
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        self._claim_socket()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        self.tracer.event("service.start", socket=self.socket_path, workers=self.workers)
        if self.fault_plan.active:
            self.tracer.event("service.fault_plan", **self.fault_plan.to_dict())

    def _claim_socket(self) -> None:
        """Take over the socket path — but never a *live* daemon's.

        A path left behind by a SIGKILLed daemon still exists on disk but
        nothing is listening; a connect probe tells the two cases apart.
        Stale sockets are unlinked and rebound, live ones are an error
        (silently stealing a serving daemon's socket would strand it).
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            self.tracer.event("service.stale_socket", socket=self.socket_path)
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        else:
            raise RuntimeError(
                f"another daemon is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    async def serve(self) -> None:
        """Run until a graceful shutdown is requested, then drain."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self._drain_and_close()

    def request_shutdown(self) -> None:
        """Flip the stop flag (safe from any thread via its loop)."""
        if self._loop is None or self._stopping is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopping.set)
        except RuntimeError:
            pass  # loop already closed: nothing left to stop

    async def _drain_and_close(self) -> None:
        # 1. No new connections.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Drain: wait for every in-flight request to answer.
        if self._busy:
            try:
                await asyncio.wait_for(self._idle.wait(), self.drain_timeout)
            except asyncio.TimeoutError:
                pass
        # 3. Unblock idle connections (readline sees EOF) and wait for
        #    the handler tasks to unwind cleanly.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._conn_tasks, return_exceptions=True), 5.0
                )
            except asyncio.TimeoutError:
                pass
        # 4. Release the pool, merge tenant trace lanes, close the trace.
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.sessions.close()
        self.tracer.event(
            "service.stop",
            requests=self.stats.requests,
            store=self.store.stats(),
        )
        self.tracer.close()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Connections.

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self._handle_line(line)
                    writer.write(response.encode())
                    await writer.drain()
                except (ConnectionError, BrokenPipeError):
                    break
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
        except asyncio.CancelledError:
            pass  # loop teardown while idle in readline
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _handle_line(self, line: bytes) -> Response:
        started = time.perf_counter()
        try:
            request = decode_request(line)
        except ProtocolError as error:
            self.stats.errors += 1
            return Response(ok=False, error=str(error))
        self.stats.requests += 1
        self.tracer.count(f"service.op.{request.op}")
        try:
            response = await self._handle_request(request)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            self.stats.errors += 1
            timeout = request.timeout or self.request_timeout
            response = Response(
                id=request.id, ok=False, error=f"timeout after {timeout:g}s"
            )
        except WorkerCrashed as error:
            self.stats.errors += 1
            response = Response(id=request.id, ok=False, error=str(error))
        except Exception as error:  # compile errors, bad configs, ...
            self.stats.errors += 1
            response = Response(
                id=request.id, ok=False, error=f"{type(error).__name__}: {error}"
            )
        response.elapsed_ms = (time.perf_counter() - started) * 1e3
        self.tracer.event(
            "service.request",
            op=request.op,
            ok=response.ok,
            cached=response.cached,
            coalesced=response.coalesced,
            ms=round(response.elapsed_ms, 3),
        )
        return response

    # ------------------------------------------------------------------
    # Request handling.

    async def _handle_request(self, request: Request) -> Response:
        op = request.op
        if op == "ping":
            return Response(id=request.id, result="pong")
        if op == "stats":
            return Response(id=request.id, result=self.describe())
        if op == "shutdown":
            # Reply first; the drain starts once this response is on the
            # wire (the connection loop holds the busy count until then).
            asyncio.get_running_loop().call_soon(self._stopping.set)
            return Response(id=request.id, result="draining")
        if op == "compile":
            # Parse + lower is cheap enough to answer on the event loop,
            # through the per-tenant session pool.
            session = self.sessions.session(
                request.source, tenant=request.tenant, path=request.path
            )
            program = session.compile()
            return Response(
                id=request.id,
                result={
                    "op": "compile",
                    "classes": len(program.classes),
                    "functions": len(program.functions),
                    "callables": sum(1 for _ in program.callables()),
                },
            )
        if op == "crash" and not self.allow_test_ops:
            self.stats.errors += 1
            return Response(
                id=request.id, ok=False, error="op 'crash' requires --allow-test-ops"
            )
        return await self._dispatch_work(request)

    async def _dispatch_work(self, request: Request) -> Response:
        config = config_from_dict(request.config).resolved(self._analysis)
        extra = ""
        if request.op == "run":
            extra = request.build
            # Budgets change the reply (result vs. clean resource-limit
            # error), so they are part of the artifact's address.
            if request.max_steps is not None or request.max_heap_cells is not None:
                extra += f":steps={request.max_steps}:cells={request.max_heap_cells}"
        key = ArtifactKey.for_request(request.op, request.source, config, extra=extra)
        timeout = request.timeout or self.request_timeout
        # Warm path: content-addressed artifact store.  The store keeps
        # the reply in its canonical wire encoding, so a warm hit serves
        # the stored bytes without unpickling the artifact or
        # re-serializing the reply per request.
        reply_bytes = self.store.get_reply_bytes(key)
        if reply_bytes is not None:
            return Response(id=request.id, result_bytes=reply_bytes, cached=True)
        artifact = self.store.get(key)
        if artifact is not None:
            return Response(id=request.id, result=artifact["reply"], cached=True)
        # In-flight coalescing: identical concurrent requests share one
        # worker dispatch (the request-batching layer in front of the pool).
        producer = self._inflight.get(key)
        coalesced = producer is not None
        if producer is None:
            task = {
                "op": request.op,
                "source": request.source,
                "path": request.path,
                "config": config.to_dict(),
                "build": request.build,
                "tenant": request.tenant,
            }
            if request.max_steps is not None:
                task["max_steps"] = request.max_steps
            if request.max_heap_cells is not None:
                task["max_heap_cells"] = request.max_heap_cells
            if self.fault_plan.active:
                task["faults"] = self.fault_plan.to_dict()
            producer = asyncio.ensure_future(self._produce(key, task))
            # Consume the exception even if every waiter times out first.
            producer.add_done_callback(
                lambda t: t.exception() if not t.cancelled() else None
            )
            self._inflight[key] = producer
        if coalesced:
            self.stats.coalesced += 1
            self.tracer.count("service.coalesced")
        # shield(): a waiter's timeout must not cancel the shared work —
        # it keeps running and lands in the store for the next asker.
        reply = await asyncio.wait_for(asyncio.shield(producer), timeout)
        return Response(id=request.id, result=reply, coalesced=coalesced)

    async def _produce(self, key: ArtifactKey, task: dict) -> dict:
        """Run one work item in the pool; store the artifact on success."""
        try:
            product = await self._execute(task)
            if product.artifact is not None:
                if product.injected == "corrupt":
                    # Chaos mode damaged the stored blob.  Store it with
                    # *no* reply-bytes fast path: the next warm lookup
                    # must go through get() and exercise the store's
                    # corrupt-pickle-as-miss recovery (recompile), never
                    # serve bytes derived from the damaged pickle.
                    self.stats.injected_corrupt += 1
                    self.tracer.count("service.fault.corrupt")
                    self.store.put_bytes(key, product.artifact)
                else:
                    reply_bytes = json.dumps(
                        product.reply, sort_keys=True, separators=(",", ":")
                    ).encode("utf-8")
                    self.store.put_bytes(key, product.artifact, reply_bytes=reply_bytes)
            if self.tracer.enabled:
                self.tracer.merge(product.trace)
            return product.reply
        finally:
            self._inflight.pop(key, None)

    async def _execute(self, task: dict):
        """Dispatch to the pool; rebuild + requeue once on a crash."""
        loop = asyncio.get_running_loop()
        for attempt in (1, 2):
            pool = self._ensure_pool()
            try:
                return await loop.run_in_executor(pool, service_work, task)
            except BrokenProcessPool:
                self.stats.crashes += 1
                self.tracer.count("service.worker.crash")
                self._discard_pool(pool)
                if attempt == 2:
                    raise WorkerCrashed(
                        f"worker died twice running op {task['op']!r}; giving up"
                    ) from None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken pool (a fresh one is built on next dispatch)."""
        if self._pool is pool:
            self._pool = None
            self.stats.pool_rebuilds += 1
            self.tracer.count("service.pool.rebuild")
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Introspection.

    def describe(self) -> dict:
        """The ``stats`` op payload."""
        return {
            "socket": self.socket_path,
            "workers": self.workers,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "inflight": len(self._inflight),
            "run_dir": self.run_dir,
            **self.stats.to_dict(),
            "store": self.store.stats(),
            "sessions": self.sessions.stats(),
        }


def serve(
    socket_path: str = DEFAULT_SOCKET_PATH,
    *,
    install_signal_handlers: bool = True,
    ready: threading.Event | None = None,
    **kwargs,
) -> ReproService:
    """Blocking entry point: run a daemon until shutdown; returns it.

    ``ready`` (a :class:`threading.Event`) is set once the socket is
    bound — the hook :class:`ServiceThread` and the CLI's foreground
    banner both use.
    """
    service = ReproService(socket_path, **kwargs)

    async def _main() -> None:
        await service.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, service._stopping.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    break  # non-main thread / unsupported platform
        if ready is not None:
            ready.set()
        await service.serve()

    asyncio.run(_main())
    return service


class ServiceThread:
    """A daemon running on a background thread (tests, ``--self-host``).

    Usage::

        with ServiceThread(socket_path) as handle:
            client = ServiceClient(handle.socket_path)
            ...

    ``stop()`` performs the same graceful drain as the ``shutdown`` op.
    """

    def __init__(self, socket_path: str, **kwargs) -> None:
        self.socket_path = socket_path
        self.service = ReproService(socket_path, **kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        async def _main() -> None:
            await self.service.start()
            self._ready.set()
            await self.service.serve()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()), name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"service did not bind {self.socket_path} in {timeout}s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        self.service.request_shutdown()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
