"""The asyncio compile daemon (``repro serve``).

One long-lived process turns the compile pipeline into a service:

- **Front end** — an asyncio unix-socket server speaking the
  newline-delimited JSON protocol (:mod:`repro.service.protocol`).
  Connections are cheap and persistent; requests on one connection are
  answered in order, and many connections are served concurrently.
- **Artifact cache** — every ``analyze``/``optimize``/``run`` answer is
  addressed by ``(op, source hash, config hash)`` in a content-addressed
  :class:`~repro.service.store.ArtifactStore`; exact repeats are
  answered from the store without touching a worker.  Identical
  **in-flight** requests are coalesced: N concurrent compiles of the
  same program dispatch one worker task and share its reply.
- **Worker pool** — CPU-bound work runs in a
  :class:`~concurrent.futures.ProcessPoolExecutor` via
  :func:`repro.service.worker.service_work`.  A crashed worker breaks
  the pool; the daemon rebuilds it and **requeues the request once** —
  a second failure becomes an error reply, never daemon death, and
  innocent requests caught in the same pool break are requeued too.
- **Robustness** — per-request timeouts (client-supplied or the
  daemon default) bound every reply; timed-out work keeps running and
  still lands in the store, so a retry usually hits cache.  Graceful
  shutdown (the ``shutdown`` op, or SIGINT/SIGTERM under the CLI) stops
  accepting work, drains in-flight requests, and only then exits.
- **Tracing** — with ``trace_dir`` set, each daemon run creates its own
  ``run-<stamp>-<pid>/`` directory and streams ``service.jsonl`` there:
  request/cache events plus every worker's span shard merged in as its
  own lane, so ``repro export chrome`` renders a multi-lane service
  trace with no manual merging.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket as socket_module
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..analysis import AnalysisConfig
from ..obs import NULL_TRACER, tracer_to_file
from ..obs.metrics import MetricsRegistry, digest
from ..obs.tracecontext import mint_span_id, parse_traceparent
from ..session import SessionPool
from .faults import FaultPlan, InjectedFault
from .protocol import ProtocolError, Request, Response, decode_request
from .store import ArtifactKey, ArtifactStore
from .worker import config_from_dict, service_work

#: Default local socket (override with ``--socket``).
DEFAULT_SOCKET_PATH = "/tmp/repro-service.sock"

#: Default per-request timeout (seconds); clients may lower it per call.
DEFAULT_REQUEST_TIMEOUT = 120.0

#: How long a graceful shutdown waits for in-flight requests.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Default latency/error SLO targets (``repro metrics`` renders burn
#: against these; override with ``--slo-p99`` / ``--slo-error-rate``).
DEFAULT_SLO_P99 = 0.25
DEFAULT_SLO_ERROR_RATE = 0.01


class WorkerCrashed(RuntimeError):
    """A request's worker died twice (original + one requeue)."""


class _RequestTrace:
    """One request's trace binding inside the daemon.

    ``lane`` is a per-request :meth:`Tracer.child` (the daemon's event
    loop interleaves requests, and a tracer's span stack is
    single-owner); ``trace_id`` is the client-minted hex id (``None``
    when the request carried no usable traceparent) and ``accept_hex``
    the hex id of the daemon's accept span — the parent the dispatch
    span names.
    """

    __slots__ = ("lane", "trace_id", "parent_hex", "accept_hex")

    def __init__(
        self,
        lane,
        trace_id: str | None,
        parent_hex: str | None,
        accept_hex: str | None,
    ) -> None:
        self.lane = lane
        self.trace_id = trace_id
        self.parent_hex = parent_hex
        self.accept_hex = accept_hex


#: The inert request binding used whenever the daemon is untraced.
_NULL_REQUEST_TRACE = _RequestTrace(NULL_TRACER, None, None, None)


def make_run_dir(base: str) -> str:
    """A fresh ``run-<stamp>-<pid>[.N]/`` directory under ``base``.

    Every daemon run owns one directory for its trace shards, so
    concurrent or successive daemons never clobber each other's traces.
    """
    os.makedirs(base, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    candidate = os.path.join(base, f"run-{stamp}-{os.getpid()}")
    suffix = 0
    path = candidate
    while True:
        try:
            os.mkdir(path)
            return path
        except FileExistsError:
            suffix += 1
            path = f"{candidate}.{suffix}"


@dataclass(slots=True)
class ServiceStats:
    """Daemon-side request counters (the ``stats`` op, plus tests)."""

    requests: int = 0
    errors: int = 0
    timeouts: int = 0
    coalesced: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    injected_corrupt: int = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "coalesced": self.coalesced,
            "crashes": self.crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "injected_corrupt": self.injected_corrupt,
        }


class ReproService:
    """The compile-as-a-service daemon (see the module docstring)."""

    def __init__(
        self,
        socket_path: str = DEFAULT_SOCKET_PATH,
        *,
        workers: int = 2,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        store_entries: int = 256,
        store_bytes: int | None = None,
        trace_dir: str | None = None,
        analysis: AnalysisConfig | None = None,
        allow_test_ops: bool = False,
        fault_plan: FaultPlan | None = None,
        slo_p99: float = DEFAULT_SLO_P99,
        slo_error_rate: float = DEFAULT_SLO_ERROR_RATE,
    ) -> None:
        self.socket_path = socket_path
        self.workers = max(1, workers)
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.allow_test_ops = allow_test_ops
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.run_dir: str | None = None
        if trace_dir is not None:
            self.run_dir = make_run_dir(trace_dir)
            self.tracer = tracer_to_file(os.path.join(self.run_dir, "service.jsonl"))
        else:
            self.tracer = NULL_TRACER
        #: Always-on live metrics (cheap dict updates; the ``metrics`` op
        #: and ``repro metrics`` read a snapshot of this registry).
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_requests = m.counter(
            "service_requests_total", "Requests received, by op", labels=("op",)
        )
        self._m_errors = m.counter(
            "service_errors_total", "Error replies, by op", labels=("op",)
        )
        self._m_timeouts = m.counter(
            "service_timeouts_total", "Requests that hit their timeout"
        )
        self._m_request_seconds = m.histogram(
            "service_request_seconds",
            "Request wall time as seen by the daemon",
            labels=("op", "code"),
        )
        self._m_queue_depth = m.gauge(
            "service_queue_depth", "Requests currently being handled"
        )
        self._m_inflight = m.gauge(
            "service_inflight_dispatches", "Distinct worker dispatches in flight"
        )
        self._m_coalesced = m.counter(
            "service_coalesced_total", "Requests that joined an in-flight dispatch"
        )
        self._m_coalesce_width = m.histogram(
            "service_coalesce_width",
            "Requests sharing one worker dispatch",
            buckets=(1, 2, 4, 8, 16, 32),
        )
        self._m_crashes = m.counter(
            "service_worker_crashes_total", "Worker-pool breaks observed"
        )
        self._m_rebuilds = m.counter(
            "service_pool_rebuilds_total", "Worker pools rebuilt after a break"
        )
        self._m_faults = m.counter(
            "service_faults_total", "Injected chaos faults", labels=("kind",)
        )
        self._m_uptime = m.gauge("service_uptime_seconds", "Daemon uptime")
        self._m_drain = m.gauge(
            "service_drain_seconds", "Wall time of the last graceful drain"
        )
        m.gauge("service_slo_p99_seconds", "Configured p99 latency target").set(slo_p99)
        m.gauge("service_slo_error_rate", "Configured error-rate target").set(
            slo_error_rate
        )
        self.slo_p99 = slo_p99
        self.slo_error_rate = slo_error_rate
        self.store = ArtifactStore(
            max_entries=store_entries,
            max_bytes=store_bytes,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        #: In-process sessions: the ``compile`` op and per-tenant lanes.
        self.sessions = SessionPool(config=analysis, tracer=self.tracer)
        self.stats = ServiceStats()
        self._analysis = analysis
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[ArtifactKey, asyncio.Task] = {}
        #: Per-inflight-key coalesce bookkeeping: waiter count (observed
        #: into the width histogram when the dispatch resolves) and the
        #: dispatch span's hex id (the target coalesced requests link to).
        self._inflight_waiters: dict[ArtifactKey, int] = {}
        self._inflight_hex: dict[ArtifactKey, str | None] = {}
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._busy = 0
        self._idle: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._started_at = time.monotonic()
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        self._claim_socket()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        self.tracer.event("service.start", socket=self.socket_path, workers=self.workers)
        if self.fault_plan.active:
            self.tracer.event("service.fault_plan", **self.fault_plan.to_dict())

    def _claim_socket(self) -> None:
        """Take over the socket path — but never a *live* daemon's.

        A path left behind by a SIGKILLed daemon still exists on disk but
        nothing is listening; a connect probe tells the two cases apart.
        Stale sockets are unlinked and rebound, live ones are an error
        (silently stealing a serving daemon's socket would strand it).
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            self.tracer.event("service.stale_socket", socket=self.socket_path)
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        else:
            raise RuntimeError(
                f"another daemon is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    async def serve(self) -> None:
        """Run until a graceful shutdown is requested, then drain."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self._drain_and_close()

    def request_shutdown(self) -> None:
        """Flip the stop flag (safe from any thread via its loop)."""
        if self._loop is None or self._stopping is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopping.set)
        except RuntimeError:
            pass  # loop already closed: nothing left to stop

    async def _drain_and_close(self) -> None:
        drain_started = time.perf_counter()
        # 1. No new connections.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Drain: wait for every in-flight request to answer.
        if self._busy:
            try:
                await asyncio.wait_for(self._idle.wait(), self.drain_timeout)
            except asyncio.TimeoutError:
                pass
        # 3. Unblock idle connections (readline sees EOF) and wait for
        #    the handler tasks to unwind cleanly.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._conn_tasks, return_exceptions=True), 5.0
                )
            except asyncio.TimeoutError:
                pass
        # 4. Release the pool, merge tenant trace lanes, close the trace.
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.sessions.close()
        drain_s = time.perf_counter() - drain_started
        self._m_drain.set(round(drain_s, 6))
        self._refresh_gauges()
        # The terminal record: a trace directory ending in
        # ``service.shutdown`` drained cleanly; one that just stops is a
        # crash or a SIGKILL.  The final snapshot digest makes postmortem
        # triage start from numbers.
        self.tracer.event(
            "service.shutdown",
            uptime_s=round(time.monotonic() - self._started_at, 3),
            drain_s=round(drain_s, 6),
            requests=self.stats.requests,
            errors=self.stats.errors,
            timeouts=self.stats.timeouts,
            coalesced=self.stats.coalesced,
            crashes=self.stats.crashes,
            store=self.store.stats(),
            metrics=digest(self.metrics.to_dict()).to_dict(),
        )
        self.tracer.close()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Connections.

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                self._busy += 1
                self._idle.clear()
                try:
                    response = await self._handle_line(line)
                    writer.write(response.encode())
                    await writer.drain()
                except (ConnectionError, BrokenPipeError):
                    break
                finally:
                    self._busy -= 1
                    if self._busy == 0:
                        self._idle.set()
        except asyncio.CancelledError:
            pass  # loop teardown while idle in readline
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _handle_line(self, line: bytes) -> Response:
        started = time.perf_counter()
        try:
            request = decode_request(line)
        except ProtocolError as error:
            self.stats.errors += 1
            self._m_errors.labels(op="invalid").inc()
            return Response(ok=False, error=str(error))
        self.stats.requests += 1
        self.tracer.count(f"service.op.{request.op}")
        self._m_requests.labels(op=request.op).inc()
        self._m_queue_depth.set(self._busy)
        rctx = self._bind_request_trace(request)
        try:
            with rctx.lane.span(
                "service.accept", **self._accept_meta(request, rctx)
            ):
                response = await self._handle_request(request, rctx)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            self.stats.errors += 1
            self._m_timeouts.inc()
            timeout = request.timeout or self.request_timeout
            response = Response(
                id=request.id, ok=False, error=f"timeout after {timeout:g}s"
            )
        except WorkerCrashed as error:
            self.stats.errors += 1
            response = Response(id=request.id, ok=False, error=str(error))
        except InjectedFault as error:
            # Chaos mode: the worker raised before any product existed,
            # so the daemon attributes the fault (see service_work).
            self.stats.errors += 1
            self._m_faults.labels(kind="error").inc()
            response = Response(
                id=request.id, ok=False, error=f"{type(error).__name__}: {error}"
            )
        except Exception as error:  # compile errors, bad configs, ...
            self.stats.errors += 1
            response = Response(
                id=request.id, ok=False, error=f"{type(error).__name__}: {error}"
            )
        finally:
            if rctx.lane is not NULL_TRACER:
                self.tracer.merge(rctx.lane)
        if not response.ok:
            self._m_errors.labels(op=request.op).inc()
        response.elapsed_ms = (time.perf_counter() - started) * 1e3
        self._m_request_seconds.labels(
            op=request.op, code="ok" if response.ok else "error"
        ).observe(response.elapsed_ms / 1e3)
        self.tracer.event(
            "service.request",
            op=request.op,
            ok=response.ok,
            cached=response.cached,
            coalesced=response.coalesced,
            ms=round(response.elapsed_ms, 3),
        )
        return response

    def _bind_request_trace(self, request: Request) -> _RequestTrace:
        """The per-request tracer lane + propagated hex ids (or the
        shared inert binding when the daemon is untraced)."""
        if not self.tracer.enabled:
            return _NULL_REQUEST_TRACE
        ctx = parse_traceparent(request.traceparent)
        return _RequestTrace(
            lane=self.tracer.child(),
            trace_id=ctx.trace_id if ctx is not None else None,
            parent_hex=ctx.span_id if ctx is not None else None,
            accept_hex=mint_span_id(),
        )

    @staticmethod
    def _accept_meta(request: Request, rctx: _RequestTrace) -> dict:
        meta: dict = {"op": request.op}
        if rctx.accept_hex is not None:
            meta["span_id"] = rctx.accept_hex
        if rctx.trace_id is not None:
            meta["trace_id"] = rctx.trace_id
        if rctx.parent_hex is not None:
            meta["parent_span"] = rctx.parent_hex
        return meta

    # ------------------------------------------------------------------
    # Request handling.

    async def _handle_request(
        self, request: Request, rctx: _RequestTrace = _NULL_REQUEST_TRACE
    ) -> Response:
        op = request.op
        if op == "ping":
            return Response(id=request.id, result="pong")
        if op == "stats":
            return Response(id=request.id, result=self.describe())
        if op == "metrics":
            self._refresh_gauges()
            return Response(id=request.id, result=self.metrics.to_dict())
        if op == "shutdown":
            # Reply first; the drain starts once this response is on the
            # wire (the connection loop holds the busy count until then).
            asyncio.get_running_loop().call_soon(self._stopping.set)
            return Response(id=request.id, result="draining")
        if op == "compile":
            # Parse + lower is cheap enough to answer on the event loop,
            # through the per-tenant session pool.
            session = self.sessions.session(
                request.source, tenant=request.tenant, path=request.path
            )
            program = session.compile()
            return Response(
                id=request.id,
                result={
                    "op": "compile",
                    "classes": len(program.classes),
                    "functions": len(program.functions),
                    "callables": sum(1 for _ in program.callables()),
                },
            )
        if op == "crash" and not self.allow_test_ops:
            self.stats.errors += 1
            return Response(
                id=request.id, ok=False, error="op 'crash' requires --allow-test-ops"
            )
        return await self._dispatch_work(request, rctx)

    async def _dispatch_work(
        self, request: Request, rctx: _RequestTrace = _NULL_REQUEST_TRACE
    ) -> Response:
        config = config_from_dict(request.config).resolved(self._analysis)
        extra = ""
        if request.op == "run":
            extra = request.build
            # Budgets change the reply (result vs. clean resource-limit
            # error), so they are part of the artifact's address.
            if request.max_steps is not None or request.max_heap_cells is not None:
                extra += f":steps={request.max_steps}:cells={request.max_heap_cells}"
        key = ArtifactKey.for_request(request.op, request.source, config, extra=extra)
        timeout = request.timeout or self.request_timeout
        # Warm path: content-addressed artifact store.  The store keeps
        # the reply in its canonical wire encoding, so a warm hit serves
        # the stored bytes without unpickling the artifact or
        # re-serializing the reply per request.
        with rctx.lane.span("service.cache", op=request.op):
            reply_bytes = self.store.get_reply_bytes(key)
            if reply_bytes is None:
                artifact = self.store.get(key)
            else:
                artifact = None
        if reply_bytes is not None:
            return Response(id=request.id, result_bytes=reply_bytes, cached=True)
        if artifact is not None:
            return Response(id=request.id, result=artifact["reply"], cached=True)
        # In-flight coalescing: identical concurrent requests share one
        # worker dispatch (the request-batching layer in front of the pool).
        producer = self._inflight.get(key)
        coalesced = producer is not None
        if producer is None:
            task = {
                "op": request.op,
                "source": request.source,
                "path": request.path,
                "config": config.to_dict(),
                "build": request.build,
                "tenant": request.tenant,
            }
            if request.max_steps is not None:
                task["max_steps"] = request.max_steps
            if request.max_heap_cells is not None:
                task["max_heap_cells"] = request.max_heap_cells
            if self.fault_plan.active:
                task["faults"] = self.fault_plan.to_dict()
            dispatch_hex = mint_span_id() if self.tracer.enabled else None
            if dispatch_hex is not None:
                # The worker opens its service.work span under the
                # dispatch span; hex ids survive the merge, local ids
                # don't (see repro.obs.tracecontext).
                task["trace"] = {
                    "trace_id": rctx.trace_id,
                    "parent_span": dispatch_hex,
                }
            producer = asyncio.ensure_future(
                self._produce(key, task, rctx, dispatch_hex)
            )
            # Consume the exception even if every waiter times out first.
            producer.add_done_callback(
                lambda t: t.exception() if not t.cancelled() else None
            )
            self._inflight[key] = producer
            self._inflight_hex[key] = dispatch_hex
            self._inflight_waiters[key] = 0
            self._m_inflight.set(len(self._inflight))
        self._inflight_waiters[key] = self._inflight_waiters.get(key, 0) + 1
        if coalesced:
            self.stats.coalesced += 1
            self.tracer.count("service.coalesced")
            self._m_coalesced.inc()
            link_hex = self._inflight_hex.get(key)
            if rctx.lane.enabled and link_hex is not None:
                # A zero-duration marker span on the waiter's lane whose
                # ``link_span`` meta names the shared dispatch — the
                # chrome exporter draws it as a flow arrow.
                with rctx.lane.span(
                    "service.coalesce",
                    op=request.op,
                    span_id=mint_span_id(),
                    link_span=link_hex,
                ):
                    pass
        # shield(): a waiter's timeout must not cancel the shared work —
        # it keeps running and lands in the store for the next asker.
        reply = await asyncio.wait_for(asyncio.shield(producer), timeout)
        return Response(id=request.id, result=reply, coalesced=coalesced)

    async def _produce(
        self,
        key: ArtifactKey,
        task: dict,
        rctx: _RequestTrace = _NULL_REQUEST_TRACE,
        dispatch_hex: str | None = None,
    ) -> dict:
        """Run one work item in the pool; store the artifact on success."""
        # The producer outlives its initiating request (waiters may time
        # out while the work proceeds), so the dispatch span lives on its
        # own tracer lane, parented to the accept span by hex id.
        lane = self.tracer.child() if self.tracer.enabled else NULL_TRACER
        meta: dict = {"op": task["op"]}
        if dispatch_hex is not None:
            meta["span_id"] = dispatch_hex
            if rctx.trace_id is not None:
                meta["trace_id"] = rctx.trace_id
            if rctx.accept_hex is not None:
                meta["parent_span"] = rctx.accept_hex
        try:
            with lane.span("service.dispatch", **meta):
                product = await self._execute(task)
            if product.artifact is not None:
                if product.injected == "corrupt":
                    # Chaos mode damaged the stored blob.  Store it with
                    # *no* reply-bytes fast path: the next warm lookup
                    # must go through get() and exercise the store's
                    # corrupt-pickle-as-miss recovery (recompile), never
                    # serve bytes derived from the damaged pickle.
                    self.stats.injected_corrupt += 1
                    self.tracer.count("service.fault.corrupt")
                    self.store.put_bytes(key, product.artifact)
                else:
                    reply_bytes = json.dumps(
                        product.reply, sort_keys=True, separators=(",", ":")
                    ).encode("utf-8")
                    self.store.put_bytes(key, product.artifact, reply_bytes=reply_bytes)
            if self.tracer.enabled:
                self.tracer.merge(product.trace)
            if product.metrics:
                self.metrics.merge_snapshot(product.metrics)
            return product.reply
        finally:
            self._inflight.pop(key, None)
            self._inflight_hex.pop(key, None)
            width = self._inflight_waiters.pop(key, 0)
            if width:
                self._m_coalesce_width.observe(width)
            self._m_inflight.set(len(self._inflight))
            if lane is not NULL_TRACER:
                self.tracer.merge(lane)

    async def _execute(self, task: dict):
        """Dispatch to the pool; rebuild + requeue once on a crash."""
        loop = asyncio.get_running_loop()
        for attempt in (1, 2):
            pool = self._ensure_pool()
            try:
                return await loop.run_in_executor(pool, service_work, task)
            except BrokenProcessPool:
                self.stats.crashes += 1
                self.tracer.count("service.worker.crash")
                self._m_crashes.inc()
                if self.fault_plan.crash_rate > 0:
                    # A broken pool under a crash-injecting plan is (with
                    # overwhelming likelihood) the injection firing; the
                    # dead worker could not report it itself.
                    self._m_faults.labels(kind="crash").inc()
                self._discard_pool(pool)
                if attempt == 2:
                    raise WorkerCrashed(
                        f"worker died twice running op {task['op']!r}; giving up"
                    ) from None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken pool (a fresh one is built on next dispatch)."""
        if self._pool is pool:
            self._pool = None
            self.stats.pool_rebuilds += 1
            self.tracer.count("service.pool.rebuild")
            self._m_rebuilds.inc()
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Introspection.

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges, updated at scrape (not per request)."""
        self._m_uptime.set(round(time.monotonic() - self._started_at, 3))
        self._m_inflight.set(len(self._inflight))
        self._m_queue_depth.set(self._busy)

    def describe(self) -> dict:
        """The ``stats`` op payload."""
        return {
            "socket": self.socket_path,
            "workers": self.workers,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "inflight": len(self._inflight),
            "run_dir": self.run_dir,
            **self.stats.to_dict(),
            "store": self.store.stats(),
            "sessions": self.sessions.stats(),
        }


def serve(
    socket_path: str = DEFAULT_SOCKET_PATH,
    *,
    install_signal_handlers: bool = True,
    ready: threading.Event | None = None,
    **kwargs,
) -> ReproService:
    """Blocking entry point: run a daemon until shutdown; returns it.

    ``ready`` (a :class:`threading.Event`) is set once the socket is
    bound — the hook :class:`ServiceThread` and the CLI's foreground
    banner both use.
    """
    service = ReproService(socket_path, **kwargs)

    async def _main() -> None:
        await service.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, service._stopping.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    break  # non-main thread / unsupported platform
        if ready is not None:
            ready.set()
        await service.serve()

    asyncio.run(_main())
    return service


class ServiceThread:
    """A daemon running on a background thread (tests, ``--self-host``).

    Usage::

        with ServiceThread(socket_path) as handle:
            client = ServiceClient(handle.socket_path)
            ...

    ``stop()`` performs the same graceful drain as the ``shutdown`` op.
    """

    def __init__(self, socket_path: str, **kwargs) -> None:
        self.socket_path = socket_path
        self.service = ReproService(socket_path, **kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        async def _main() -> None:
            await self.service.start()
            self._ready.set()
            await self.service.serve()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()), name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"service did not bind {self.socket_path} in {timeout}s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        self.service.request_shutdown()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
