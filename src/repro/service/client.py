"""A blocking client for the compile service.

:class:`ServiceClient` owns one persistent connection to the daemon's
unix socket and exposes one method per protocol op.  It is deliberately
synchronous — the CLI, the load generator's worker threads, and tests
all want straight-line request/reply code; concurrency comes from many
clients (or many threads, one client each), which is exactly the shape
the daemon is built to serve.

``request()`` returns the decoded :class:`~repro.service.protocol.Response`
(inspect ``.ok``/``.error``/``.cached`` yourself); the convenience
methods (:meth:`optimize`, :meth:`run`, ...) raise
:class:`ServiceError` on error replies instead.

Every request mints a fresh W3C-shaped trace context
(:mod:`repro.obs.tracecontext`) and sends it as the ``traceparent``
field; the daemon binds its spans for the request under those ids.  A
client constructed with a real ``tracer`` additionally opens a
``service.client`` span per request carrying the same hex ids in its
meta, so exporting the client trace *together with* the daemon's
``service.jsonl`` stitches client → daemon → worker into one tree
(``repro export chrome client.jsonl service.jsonl``).
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import asdict, is_dataclass

from ..obs import NULL_TRACER
from ..obs.tracecontext import format_traceparent, mint_span_id, mint_trace_id
from .protocol import MAX_LINE_BYTES, ProtocolError, Request, Response, decode_response


class ServiceError(RuntimeError):
    """The daemon answered with an error reply."""


class ServiceClient:
    """One connection to a running ``repro serve`` daemon.

    ``connect_retries`` > 0 makes :meth:`connect` retry a missing or
    not-yet-listening socket with exponential backoff plus jitter —
    the fix for the ``--self-host`` startup race where a client's first
    connect can beat the daemon's bind.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: float = 300.0,
        tenant: str = "default",
        connect: bool = True,
        connect_retries: int = 0,
        retry_backoff: float = 0.05,
        tracer=NULL_TRACER,
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self.tenant = tenant
        self.connect_retries = max(0, connect_retries)
        self.retry_backoff = retry_backoff
        self.tracer = tracer
        #: Correlation ids of the most recent request (tests, triage).
        self.last_trace_id: str | None = None
        self.last_traceparent: str | None = None
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 1
        if connect:
            self.connect()

    # ------------------------------------------------------------------
    # Connection plumbing.

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        attempt = 0
        while True:
            try:
                self._connect_once()
                return self
            except (FileNotFoundError, ConnectionRefusedError):
                # The daemon has not bound (yet) — retriable; anything
                # else (permissions, a non-socket path) is not.
                if attempt >= self.connect_retries:
                    raise
                delay = self.retry_backoff * (2**attempt)
                time.sleep(delay * (0.5 + random.random()))
                attempt += 1

    def _connect_once(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The raw request/reply cycle.

    def request(
        self,
        op: str,
        *,
        source: str | None = None,
        path: str | None = None,
        config: object = None,
        build: str = "inline",
        timeout: float | None = None,
        max_steps: int | None = None,
        max_heap_cells: int | None = None,
    ) -> Response:
        """Send one request and block for its reply."""
        self.connect()
        if is_dataclass(config) and not isinstance(config, type):
            config = asdict(config)
        trace_id = mint_trace_id()
        span_id = mint_span_id()
        traceparent = format_traceparent(trace_id, span_id)
        self.last_trace_id = trace_id
        self.last_traceparent = traceparent
        request = Request(
            op=op,
            id=self._next_id,
            source=source,
            path=path,
            config=config,
            build=build,
            tenant=self.tenant,
            timeout=timeout,
            max_steps=max_steps,
            max_heap_cells=max_heap_cells,
            traceparent=traceparent,
        )
        self._next_id += 1
        with self.tracer.span(
            "service.client", op=op, trace_id=trace_id, span_id=span_id
        ):
            self._file.write(request.encode())
            self._file.flush()
            line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            self.close()
            raise ServiceError(
                f"daemon at {self.socket_path} closed the connection mid-request"
            )
        try:
            response = decode_response(line)
        except ProtocolError as error:
            raise ServiceError(f"bad response from daemon: {error}") from None
        if response.id is not None and response.id != request.id:
            raise ServiceError(
                f"response id {response.id!r} does not match request {request.id!r}"
            )
        return response

    def _checked(self, response: Response) -> Response:
        if not response.ok:
            raise ServiceError(response.error or "service error")
        return response

    # ------------------------------------------------------------------
    # Convenience ops (raise ServiceError on error replies).

    def ping(self) -> bool:
        return self._checked(self.request("ping")).result == "pong"

    def stats(self) -> dict:
        return self._checked(self.request("stats")).result

    def metrics(self) -> dict:
        """The daemon's live metrics-registry snapshot (read-only)."""
        return self._checked(self.request("metrics")).result

    def compile(self, source: str, path: str | None = None) -> Response:
        return self._checked(self.request("compile", source=source, path=path))

    def analyze(self, source: str, config: object = None, **kw) -> Response:
        return self._checked(self.request("analyze", source=source, config=config, **kw))

    def optimize(self, source: str, config: object = None, **kw) -> Response:
        return self._checked(self.request("optimize", source=source, config=config, **kw))

    def run(
        self, source: str, build: str = "inline", config: object = None, **kw
    ) -> Response:
        return self._checked(
            self.request("run", source=source, build=build, config=config, **kw)
        )

    def shutdown(self) -> Response:
        return self._checked(self.request("shutdown"))
