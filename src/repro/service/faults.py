"""Fault injection for the compile service (chaos testing).

A :class:`FaultPlan` describes, as independent per-request probabilities,
the ways a worker can misbehave:

- ``error_rate`` — the worker raises :class:`InjectedFault` mid-request
  (the daemon turns it into a clean error reply).
- ``hang_rate`` — the worker sleeps ``hang_seconds`` before answering
  (long enough to trip the per-request timeout when configured so).
- ``corrupt_rate`` — the worker's artifact pickle is truncated/garbled
  before it reaches the store.  The daemon detects this and suppresses
  the reply-bytes fast path for the entry, so the *cold* reply is still
  correct and the next warm lookup takes the ``corrupt-pickle-as-miss``
  recovery path and recompiles.
- ``crash_rate`` — the worker process dies via ``os._exit`` (exercises
  the pool-rebuild + requeue path).

The plan is threaded **daemon -> task dict -> worker** (never read from
the environment inside the worker), so in-process calls to
``service_work`` — the loadgen verify oracle, tests — are never
accidentally fault-injected.  ``FaultPlan.from_env`` exists for the CLI:
``REPRO_FAULT_PLAN='{"error_rate": 0.05}' repro serve ...``.

Draws are deterministic per ``(plan seed, pid, request counter)`` so a
chaos run is reproducible given a single worker process.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass

#: Environment variable the CLI/daemon consult at startup.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """A deliberately injected worker failure (chaos mode)."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-request fault probabilities (all independent, in [0, 1])."""

    error_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 2.0
    corrupt_rate: float = 0.0
    crash_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("error_rate", "hang_rate", "corrupt_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")

    @property
    def active(self) -> bool:
        return any(
            (self.error_rate, self.hang_rate, self.corrupt_rate, self.crash_rate)
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict | None) -> "FaultPlan":
        if not payload:
            return cls()
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "FaultPlan":
        """The plan in ``$REPRO_FAULT_PLAN`` (JSON), or an inactive one."""
        raw = (environ if environ is not None else os.environ).get(FAULT_PLAN_ENV)
        if not raw:
            return cls()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"{FAULT_PLAN_ENV} is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError(f"{FAULT_PLAN_ENV} must be a JSON object")
        return cls.from_dict(payload)


#: "none" | "error" | "hang" | "corrupt" | "crash"
def draw(plan: FaultPlan, rng: random.Random) -> str:
    """One fault decision; independent uniform draw per category."""
    if rng.random() < plan.crash_rate:
        return "crash"
    if rng.random() < plan.error_rate:
        return "error"
    if rng.random() < plan.hang_rate:
        return "hang"
    if rng.random() < plan.corrupt_rate:
        return "corrupt"
    return "none"


def corrupt_bytes(blob: bytes, rng: random.Random) -> bytes:
    """Damage a pickle so ``pickle.loads`` reliably fails.

    Truncating mid-stream and splicing in ``\\x00`` (not a pickle
    opcode) guarantees an unpickle error; a random bit flip would not —
    it can yield a *valid* pickle of wrong data, which the store could
    never detect and would serve as a correct-looking warm reply.
    """
    keep = rng.randrange(0, max(1, len(blob) // 2))
    return blob[:keep] + b"\x00chaos"
