"""The content-addressed compiled-artifact store.

Every artifact the compile service produces is addressed by **what was
compiled**, never by who asked: the key is ``(kind, source_key,
config_key)`` where ``source_key`` is the SHA-256 of the program text
(:func:`repro.session.source_key`) and ``config_key`` is the canonical
content hash of the :class:`repro.session.CompileConfig`
(:meth:`~repro.session.CompileConfig.content_key` — the same scheme the
perf-history ledger uses).  Two clients sending the same program with
the same config therefore share one artifact, across connections and
across time.

Values are stored **pickled**: a worker process pickles the artifact
blob once (optimized IR + analysis summary + the exact reply payload),
the daemon keeps the bytes, and a warm hit unpickles the same bytes
every time — which is what makes cache-hit replies bit-identical to the
cold compile that populated the entry.  A corrupt entry (truncated or
garbage bytes) is treated as a **miss**: the entry is discarded, the
``corrupt`` counter ticks, and the caller recompiles — the store never
takes the daemon down.

Bounds and counters: entries are LRU-evicted past ``max_entries`` (and
``max_bytes``, when set), and every lookup outcome is counted both on
the store (``hits``/``misses``/``evictions``/``corrupt``) and through
the :mod:`repro.obs` tracer as ``service.store.*`` counters, so a
traced daemon run carries its cache behavior in the JSONL stream.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass

from ..obs import NULL_METRICS, NULL_TRACER
from ..obs.metrics import DEFAULT_SIZE_BUCKETS
from ..session import CompileConfig, source_key


@dataclass(frozen=True, slots=True)
class ArtifactKey:
    """One content address: what operation, which source, which config."""

    kind: str  # "optimize" | "analyze" | "run" | ...
    source_key: str
    config_key: str

    @classmethod
    def for_request(
        cls, kind: str, source: str, config: CompileConfig, extra: str = ""
    ) -> "ArtifactKey":
        """The address of (``kind``, ``source``, ``config``).

        ``extra`` folds request facets that change the answer but live
        outside the config (e.g. the build name of a ``run``) into the
        config half of the address.
        """
        key = config.content_key()
        if extra:
            key = f"{key}:{extra}"
        return cls(kind=kind, source_key=source_key(source), config_key=key)


class ArtifactStore:
    """Content-addressed, LRU-bounded map of pickled artifacts."""

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int | None = None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tracer = tracer
        self.metrics = metrics
        # Pre-bound label children: the hot path is one dict update, no
        # kwargs allocation (and NULL_METRICS makes all of these the one
        # shared inert instrument).
        hits = metrics.counter(
            "service_store_hits_total", "Artifact-store hits", labels=("path",)
        )
        self._m_hit_artifact = hits.labels(path="artifact")
        self._m_hit_reply_bytes = hits.labels(path="reply_bytes")
        self._m_miss = metrics.counter(
            "service_store_misses_total", "Artifact-store misses"
        )
        self._m_evict = metrics.counter(
            "service_store_evictions_total", "Artifact-store LRU evictions"
        )
        self._m_corrupt = metrics.counter(
            "service_store_corrupt_total", "Corrupt cache entries discarded"
        )
        self._m_put = metrics.counter(
            "service_store_puts_total", "Artifacts stored"
        )
        self._m_entries = metrics.gauge(
            "service_store_entries", "Live artifact-store entries"
        )
        self._m_bytes = metrics.gauge(
            "service_store_bytes", "Artifact-store resident bytes"
        )
        self._m_artifact_bytes = metrics.histogram(
            "service_artifact_bytes",
            "Stored artifact blob size",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        #: key -> (pickled blob, canonical encoded reply bytes or None).
        self._entries: OrderedDict[ArtifactKey, tuple[bytes, bytes | None]] = (
            OrderedDict()
        )
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.reply_bytes_hits = 0
        self.evictions = 0
        self.corrupt = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Lookup / insert.

    def get_bytes(self, key: ArtifactKey) -> bytes | None:
        """The raw pickled blob, or ``None`` on miss (LRU-refreshing)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.tracer.count("service.store.miss")
            self._m_miss.inc()
            return None
        self.hits += 1
        self.tracer.count("service.store.hit")
        self._m_hit_artifact.inc()
        self._entries.move_to_end(key)
        return entry[0]

    def get_reply_bytes(self, key: ArtifactKey) -> bytes | None:
        """The canonical encoded reply bytes, or ``None``.

        A present entry without reply bytes (a pre-upgrade producer, or
        an op whose reply is uncacheable) returns ``None`` *without*
        counting a miss — the caller falls back to :meth:`get` and that
        lookup does the counting.  A hit counts as a store hit plus
        ``service.store.reply_bytes_hit`` so traces show how many warm
        replies skipped the unpickle + re-encode entirely.
        """
        entry = self._entries.get(key)
        if entry is None or entry[1] is None:
            return None
        self.hits += 1
        self.reply_bytes_hits += 1
        self.tracer.count("service.store.hit")
        self.tracer.count("service.store.reply_bytes_hit")
        self._m_hit_reply_bytes.inc()
        self._entries.move_to_end(key)
        return entry[1]

    def get(self, key: ArtifactKey) -> object | None:
        """The unpickled artifact, or ``None`` on miss.

        A blob that fails to unpickle is **discarded and counted as a
        miss** (plus ``corrupt``): a damaged cache entry must never be
        worse than no cache entry.
        """
        blob = self.get_bytes(key)
        if blob is None:
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            # Bad pickle -> drop the entry, refund the hit as a miss.
            self.hits -= 1
            self.misses += 1
            self.corrupt += 1
            self.tracer.count("service.store.corrupt")
            self._m_hit_artifact.dec()
            self._m_miss.inc()
            self._m_corrupt.inc()
            self._drop(key)
            return None

    def put(self, key: ArtifactKey, value: object) -> bytes:
        """Pickle ``value`` and store it; returns the stored bytes."""
        return self.put_bytes(key, pickle.dumps(value))

    def put_bytes(
        self, key: ArtifactKey, blob: bytes, reply_bytes: bytes | None = None
    ) -> bytes:
        """Store an already-pickled blob (what workers ship back).

        ``reply_bytes`` is the reply payload in its canonical wire
        encoding; when given, warm hits can serve it via
        :meth:`get_reply_bytes` without touching the pickle.
        """
        if key in self._entries:
            self._drop(key)
        self._entries[key] = (blob, reply_bytes)
        self._total_bytes += self._entry_bytes((blob, reply_bytes))
        self.tracer.count("service.store.put")
        self._m_put.inc()
        self._m_artifact_bytes.observe(len(blob))
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._total_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            evicted_key, evicted = self._entries.popitem(last=False)
            self._total_bytes -= self._entry_bytes(evicted)
            self.evictions += 1
            self.tracer.count("service.store.evict")
            self._m_evict.inc()
            if evicted_key == key:
                break
        self._update_size_gauges()
        return blob

    @staticmethod
    def _entry_bytes(entry: tuple[bytes, bytes | None]) -> int:
        blob, reply_bytes = entry
        return len(blob) + (len(reply_bytes) if reply_bytes is not None else 0)

    def _drop(self, key: ArtifactKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._total_bytes -= self._entry_bytes(entry)
            self._update_size_gauges()

    def clear(self) -> None:
        self._entries.clear()
        self._total_bytes = 0
        self._update_size_gauges()

    def _update_size_gauges(self) -> None:
        self._m_entries.set(len(self._entries))
        self._m_bytes.set(self._total_bytes)

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-serializable counters (the service ``stats`` op)."""
        return {
            "entries": len(self._entries),
            "bytes": self._total_bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "reply_bytes_hits": self.reply_bytes_hits,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }
