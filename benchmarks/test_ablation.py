"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism and measures OOPACK + polyover
(the benchmarks most sensitive to it), quantifying how much of the
Figure 17 gain each mechanism contributes:

- **stack allocation** of by-value-consumed children (vs keeping them
  heap-allocated after the copy),
- **array-element inlining layout** (SoA for narrow elements vs AoS),
- **scalar passes** (method inlining + load CSE + DCE) on top of object
  inlining,
- **devirtualization only** (the no-inlining baseline's own win over the
  fully dynamic model).
"""

import pytest

from repro.bench.harness import PERFORMANCE_PROGRAMS
from repro.inlining.pipeline import optimize
from repro.ir import compile_source
from repro.runtime import run_program


@pytest.fixture(scope="module")
def oopack_program():
    return compile_source(PERFORMANCE_PROGRAMS["oopack"], "oopack.icc")


@pytest.fixture(scope="module")
def polyover_list_program():
    return compile_source(PERFORMANCE_PROGRAMS["polyover (list)"], "polyover_list.icc")


def _cycles(program):
    return run_program(program).stats.cycles()


def test_ablation_stack_allocation(benchmark, polyover_list_program):
    """Disable the stack-allocation downgrade by zeroing the stackable
    sets after planning — measures pure layout/deref gains."""
    from repro.analysis import analyze
    from repro.cloning.emit import transform_program
    from repro.inlining.decisions import DecisionEngine
    from repro.ir import validate_program

    program = polyover_list_program

    def build_and_run():
        result = analyze(program)
        plan = DecisionEngine(result).plan()
        for candidate in plan.candidates.values():
            candidate.stackable_allocations.clear()
        outcome = transform_program(result, plan, devirtualize=True)
        assert outcome.program is not None
        validate_program(outcome.program)
        return _cycles(outcome.program)

    no_stack = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    full = _cycles(optimize(program).program)
    baseline = _cycles(optimize(program, inline=False).program)

    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["inline_no_stack"] = no_stack
    benchmark.extra_info["inline_full"] = full
    benchmark.extra_info["stack_alloc_share"] = round(
        (no_stack - full) / max(baseline - full, 1), 3
    )
    # Stack allocation contributes, but is not the whole story.
    assert full <= no_stack <= baseline * 1.02


def test_ablation_scalar_passes(benchmark, oopack_program):
    """Object inlining with vs without the scalar passes."""
    program = oopack_program

    def run_without_passes():
        report = optimize(
            program,
            inline_methods_pass=False,
            cache_loads_pass=False,
            dce_pass=False,
        )
        return _cycles(report.program)

    without = benchmark.pedantic(run_without_passes, rounds=1, iterations=1)
    with_passes = _cycles(optimize(program).program)
    benchmark.extra_info["inline_without_scalar_passes"] = without
    benchmark.extra_info["inline_with_scalar_passes"] = with_passes
    assert with_passes <= without


def test_ablation_devirtualization(benchmark, oopack_program):
    """The baseline's own devirtualization win over fully dynamic code."""
    program = oopack_program

    def run_dynamic():
        # No optimization at all: the raw uniform model.
        return run_program(program).stats.cycles()

    dynamic = benchmark.pedantic(run_dynamic, rounds=1, iterations=1)
    devirt = _cycles(optimize(program, inline=False).program)
    benchmark.extra_info["fully_dynamic"] = dynamic
    benchmark.extra_info["devirtualized"] = devirt
    assert devirt <= dynamic


def test_ablation_parallel_layout(benchmark, oopack_program):
    """SoA vs AoS layout for the complex-number arrays.

    The layout heuristic picks SoA for two-field elements (OOPACK); this
    ablation forces AoS and measures the difference.
    """
    from repro.ir import model as ir

    program = oopack_program
    report = optimize(program)

    def force_aos_and_run():
        for callable_ in report.program.callables():
            for block in callable_.blocks:
                block.instrs = [
                    ir.make_instr(
                        ir.NewArray,
                        i.loc,
                        dest=i.dest,
                        size=i.size,
                        inline_layout=i.inline_layout,
                        parallel_layout=False,
                        declared_inline=i.declared_inline,
                    )
                    if isinstance(i, ir.NewArray) and i.inline_layout
                    else i
                    for i in block.instrs
                ]
        return _cycles(report.program)

    aos = benchmark.pedantic(force_aos_and_run, rounds=1, iterations=1)
    soa = _cycles(optimize(program).program)
    benchmark.extra_info["aos_cycles"] = aos
    benchmark.extra_info["soa_cycles"] = soa
    # Both layouts must stay far ahead of the uninlined baseline.
    baseline = _cycles(optimize(program, inline=False).program)
    benchmark.extra_info["baseline"] = baseline
    assert max(aos, soa) < baseline
