"""Figure 15 — generated code size with vs without object inlining.

Benchmarks the code generator over both builds and reports the sizes.
The paper found inlining does not bloat code (theirs shrank slightly
thanks to Concert's method inliner, which we do not reproduce — see
EXPERIMENTS.md); we assert the growth stays within a small bound.
"""

import pytest

from repro.bench.harness import BENCHMARKS
from repro.codegen import generate
from repro.inlining.pipeline import optimize


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_figure15_code_size(benchmark, compiled_benchmarks, name):
    program = compiled_benchmarks[name]
    without = optimize(program, inline=False).program
    with_inlining = optimize(program, inline=True).program

    def emit_both():
        return generate(without).size_bytes, generate(with_inlining).size_bytes

    size_without, size_with = benchmark.pedantic(emit_both, rounds=1, iterations=1)

    benchmark.extra_info["size_without_bytes"] = size_without
    benchmark.extra_info["size_with_bytes"] = size_with
    benchmark.extra_info["ratio"] = round(size_with / size_without, 3)

    # Cloning must not explode generated code (paper: it shrinks; ours
    # grows mildly without a method inliner — bound the divergence).
    assert size_with < size_without * 1.5
