"""Figure 17 — performance of object inlining.

For each benchmark (polyover in both its array and list variants, as in
the paper) this measures VM execution of the three builds and reports
runtime normalized to Concert-without-inlining.  The assertions encode
the paper's qualitative results: inlining never loses; OOPACK and both
polyover variants win big; Silo and Richards win modestly; the automatic
optimizer matches the manually annotated build; and polyover(list)'s
gain is not expressible manually.
"""

import pytest

from repro.bench.harness import PERFORMANCE_PROGRAMS
from repro.runtime import run_program

#: Minimum speedups (paper values are larger; our VM compresses ratios —
#: see EXPERIMENTS.md for the calibration discussion).
MIN_SPEEDUP = {
    "oopack": 1.5,
    "richards": 1.0,
    "silo": 1.02,
    "polyover (array)": 1.4,
    "polyover (list)": 1.3,
}


@pytest.mark.parametrize("name", list(PERFORMANCE_PROGRAMS))
def test_figure17_performance(benchmark, optimized_builds, name):
    builds = optimized_builds[name]

    def run_all_builds():
        return {
            build: run_program(program) for build, program in builds.items()
        }

    results = benchmark.pedantic(run_all_builds, rounds=1, iterations=1)

    reference = results["noinline"].output
    assert results["inline"].output == reference
    assert results["manual"].output == reference

    cycles = {build: result.stats.cycles() for build, result in results.items()}
    benchmark.extra_info["normalized_inline"] = round(
        cycles["inline"] / cycles["noinline"], 3
    )
    benchmark.extra_info["normalized_manual"] = round(
        cycles["manual"] / cycles["noinline"], 3
    )
    benchmark.extra_info["speedup_inline"] = round(
        cycles["noinline"] / cycles["inline"], 2
    )

    assert cycles["noinline"] / cycles["inline"] >= MIN_SPEEDUP[name], cycles
    # Automatic matches (or beats) manual inline allocation.
    assert cycles["inline"] <= cycles["manual"] * 1.02


def test_list_variant_gain_is_automatic_only(optimized_builds):
    """polyover (list): merging cons cells with their data cannot be
    declared in C++, so the manual build shows no speedup."""
    builds = optimized_builds["polyover (list)"]
    cycles = {b: run_program(p).stats.cycles() for b, p in builds.items()}
    assert cycles["noinline"] / cycles["manual"] < 1.02
    assert cycles["noinline"] / cycles["inline"] > 1.3
