"""Figure 14 — inlinable field counts.

Benchmarks the full decision pipeline (analysis + use/assignment
specialization) per benchmark and reports the paper's four bars as
``extra_info``.  The shape assertions mirror §6.1: automatic ≥ declared
everywhere, strictly greater on Silo/Richards/polyover, and ≤ ideal.
"""

import pytest

from repro.analysis import analyze
from repro.bench.harness import BENCHMARKS
from repro.inlining.decisions import DecisionEngine
from repro.inlining.pipeline import candidate_is_declared_inline


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_figure14_counts(benchmark, compiled_benchmarks, name):
    program = compiled_benchmarks[name]

    def decide():
        result = analyze(program)
        return DecisionEngine(result).plan()

    plan = benchmark.pedantic(decide, rounds=1, iterations=1)

    info = BENCHMARKS[name][1]
    candidates = list(plan.candidates.values())
    total = len(candidates)
    declared = sum(1 for c in candidates if candidate_is_declared_inline(program, c))
    automatic = sum(1 for c in candidates if c.accepted)

    benchmark.extra_info["total_object_fields"] = total
    benchmark.extra_info["ideal"] = info.ideal_inlinable
    benchmark.extra_info["declared_cpp"] = declared
    benchmark.extra_info["automatic"] = automatic

    assert automatic >= declared
    assert automatic <= info.ideal_inlinable
    if name in ("silo", "richards", "polyover"):
        assert automatic > declared
