"""Shared state for the figure-regeneration benchmarks.

Programs are compiled and optimized once per session; the benchmark
targets then measure the stage each figure depends on (analysis for
Figure 16, code generation for Figure 15, VM execution for Figure 17).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BENCHMARKS, PERFORMANCE_PROGRAMS
from repro.inlining.pipeline import optimize
from repro.ir import compile_source


@pytest.fixture(scope="session")
def compiled_benchmarks():
    """name -> uniform-model IRProgram for the Figure 14-16 set."""
    return {
        name: compile_source(source, f"{name}.icc")
        for name, (source, _info) in BENCHMARKS.items()
    }


@pytest.fixture(scope="session")
def compiled_performance_programs():
    """name -> uniform-model IRProgram for the Figure 17 set."""
    return {
        name: compile_source(source, f"{name}.icc")
        for name, source in PERFORMANCE_PROGRAMS.items()
    }


@pytest.fixture(scope="session")
def optimized_builds(compiled_performance_programs):
    """name -> {build: transformed IRProgram} for the Figure 17 set."""
    builds = {}
    for name, program in compiled_performance_programs.items():
        builds[name] = {
            "noinline": optimize(program, inline=False).program,
            "inline": optimize(program, inline=True).program,
            "manual": optimize(program, manual_only=True).program,
        }
    return builds
