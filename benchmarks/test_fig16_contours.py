"""Figure 16 — analysis sensitivity cost.

Benchmarks the flow analysis in the baseline (Concert) and inlining
sensitivities and reports method contours per method — the paper's
measure of the extra precision object inlining demands — plus the
§6.2.2 object-contour observation.
"""

import pytest

from repro.analysis import AnalysisConfig, SENSITIVITY_CONCERT, analyze
from repro.bench.harness import BENCHMARKS


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_figure16_contours(benchmark, compiled_benchmarks, name):
    program = compiled_benchmarks[name]

    def analyze_both():
        baseline = analyze(program, AnalysisConfig(sensitivity=SENSITIVITY_CONCERT))
        precise = analyze(program)
        return baseline, precise

    baseline, precise = benchmark.pedantic(analyze_both, rounds=1, iterations=1)

    benchmark.extra_info["contours_per_method_without"] = round(
        baseline.method_contours_per_method(), 2
    )
    benchmark.extra_info["contours_per_method_with"] = round(
        precise.method_contours_per_method(), 2
    )
    benchmark.extra_info["object_contours_without"] = baseline.object_contour_count()
    benchmark.extra_info["object_contours_with"] = precise.object_contour_count()

    # The inlining analysis needs at least the baseline's sensitivity...
    assert (
        precise.method_contours_per_method()
        >= baseline.method_contours_per_method() - 1e-9
    )
    # ...but object contours stay essentially unchanged (§6.2.2).
    assert precise.object_contour_count() <= baseline.object_contour_count() * 1.3 + 5
